"""Chirp synthesis for LoRa chirp spread spectrum.

A LoRa symbol with value ``s`` (0 <= s < 2**SF) is an up-chirp whose
instantaneous frequency starts at ``s * BW / 2**SF``, sweeps up linearly, and
wraps around at the band edge (paper Fig. 2).  At the critically sampled
rate (``Fs == BW``) the sampled symbol has the closed form::

    x_s[n] = exp(j * 2*pi * (n^2 / (2*N) + s * n / N)),   N = 2**SF

where the band-edge wrap is implicit in the modulo-1 phase.  Multiplying by
the conjugate base chirp ("dechirping") therefore yields a pure tone
``exp(j*2*pi*s*n/N)`` whose FFT peaks exactly at bin ``s`` -- the property
every algorithm in :mod:`repro.core` relies on.

For integer oversampling factors the wrap is made explicit so the waveform
stays band-limited to ``BW``.
"""

from __future__ import annotations

import numpy as np

from repro.phy.params import LoRaParams


def upchirp(params: LoRaParams, symbol: int = 0) -> np.ndarray:
    """One CSS up-chirp encoding ``symbol``.

    Returns a unit-amplitude complex baseband vector of
    ``params.samples_per_symbol`` samples.
    """
    n_chips = params.chips_per_symbol
    if not 0 <= symbol < n_chips:
        raise ValueError(f"symbol must be in [0, {n_chips}), got {symbol}")
    osf = params.oversampling
    n = np.arange(params.samples_per_symbol, dtype=float) / osf
    if osf == 1:
        phase = n * n / (2.0 * n_chips) + symbol * n / n_chips
        return np.exp(2j * np.pi * phase)
    # Oversampled: generate the explicitly wrapped instantaneous frequency
    # (from -BW/2 to +BW/2 in baseband) and integrate it to phase.
    chip_frac = (n + float(symbol)) % n_chips  # position within the sweep
    inst_freq = chip_frac / n_chips - 0.5  # cycles per chip, in [-0.5, 0.5)
    dt = 1.0 / osf  # chips per sample
    phase = np.cumsum(inst_freq) * dt
    phase -= phase[0]
    return np.exp(2j * np.pi * phase)


def downchirp(params: LoRaParams) -> np.ndarray:
    """The base down-chirp: complex conjugate of the symbol-0 up-chirp.

    Multiplying a received symbol by this vector ("dechirping") converts
    each colliding up-chirp into a complex tone (paper Sec. 4, step 1).
    """
    return np.conj(upchirp(params, 0))


def chirp_train(params: LoRaParams, symbols: np.ndarray | list) -> np.ndarray:
    """Concatenate the up-chirps for a symbol sequence into one waveform."""
    symbols = np.asarray(symbols, dtype=int)
    if symbols.ndim != 1:
        raise ValueError("symbols must be a 1-D sequence")
    chunks = [upchirp(params, int(s)) for s in symbols]
    if not chunks:
        return np.zeros(0, dtype=complex)
    return np.concatenate(chunks)


def delayed_chirp_train(
    params: LoRaParams, symbols: np.ndarray | list, delay_samples: float = 0.0
) -> np.ndarray:
    """Chirp train rendered with an analytic (possibly fractional) delay.

    Evaluates each symbol's quadratic phase at the shifted time
    ``tau = n - delay``, which is how an analog chirp transmitted ``delay``
    samples late is sampled by an on-time receiver.  Dechirping such a
    symbol against the aligned down-chirp yields a *pure* tone shifted by
    exactly ``-delay`` bins (Eqn. 5's time-frequency duality)::

        phi(tau) - phi(n) = -(delay/N) * n + const,  tau = n - delay

    (A band-limited fractional shift of the critically sampled waveform
    would instead split the aliased band edge and splatter the tone, which
    is a simulation artefact, not transmitter physics.)

    The returned vector covers ``ceil(len(symbols)*N + delay)`` samples with
    zeros before the transmission starts.  Only ``delay >= 0`` and
    ``oversampling == 1`` are supported.
    """
    if delay_samples < 0:
        raise ValueError(f"delay_samples must be >= 0, got {delay_samples}")
    if params.oversampling != 1:
        raise ValueError("delayed_chirp_train requires oversampling == 1")
    symbols = np.asarray(symbols, dtype=int)
    n_chips = params.chips_per_symbol
    total = int(np.ceil(symbols.size * n_chips + delay_samples))
    n = np.arange(total, dtype=float)
    tau_global = n - delay_samples
    idx = np.floor(tau_global / n_chips).astype(int)
    valid = (idx >= 0) & (idx < symbols.size)
    tau = tau_global - idx * n_chips  # position within the chirp, [0, N)
    out = np.zeros(total, dtype=complex)
    sym_vals = symbols[np.clip(idx, 0, max(symbols.size - 1, 0))].astype(float)
    phase = tau * tau / (2.0 * n_chips) + sym_vals * tau / n_chips
    out[valid] = np.exp(2j * np.pi * phase[valid])
    return out


def instantaneous_frequency(waveform: np.ndarray, sample_rate: float) -> np.ndarray:
    """Estimate the instantaneous frequency (Hz) of a complex waveform.

    Used by tests and the spectrogram example to verify chirp linearity; the
    result has one fewer sample than the input.
    """
    waveform = np.asarray(waveform)
    if waveform.size < 2:
        return np.zeros(0)
    dphi = np.angle(waveform[1:] * np.conj(waveform[:-1]))
    return dphi / (2.0 * np.pi) * sample_rate
