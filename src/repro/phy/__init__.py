"""LoRa chirp-spread-spectrum physical layer.

This package is a from-scratch software implementation of the LoRaWAN PHY
described in Sec. 3 of the Choir paper: chirp synthesis, CSS modulation and
demodulation, the packet structure (preamble / sync word / payload / CRC),
and the LoRa coding chain (whitening, Hamming FEC, interleaving, Gray
mapping).  It is the substrate the Choir decoder (:mod:`repro.core`) builds
on.
"""

from repro.phy.params import ChannelPlan, LoRaParams
from repro.phy.chirp import downchirp, upchirp
from repro.phy.modulation import CssModulator, modulate_symbols
from repro.phy.demodulation import CssDemodulator, demodulate_symbols
from repro.phy.packet import LoRaFrame, LoRaFramer
from repro.phy.encoding import (
    gray_decode,
    gray_encode,
    hamming_decode,
    hamming_encode,
    interleave,
    deinterleave,
    whiten,
)
from repro.phy.crc import crc16_ccitt

__all__ = [
    "ChannelPlan",
    "LoRaParams",
    "upchirp",
    "downchirp",
    "CssModulator",
    "CssDemodulator",
    "modulate_symbols",
    "demodulate_symbols",
    "LoRaFrame",
    "LoRaFramer",
    "gray_encode",
    "gray_decode",
    "hamming_encode",
    "hamming_decode",
    "interleave",
    "deinterleave",
    "whiten",
    "crc16_ccitt",
]
