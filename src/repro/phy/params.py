"""LoRa PHY parameter set.

A :class:`LoRaParams` bundles the degrees of freedom of the LoRaWAN PHY the
paper uses: spreading factor (7..12), bandwidth (125/250/500 kHz) and the
preamble length.  All derived quantities (symbol duration, samples per
symbol, FFT bin width, raw bit rate) hang off it so the rest of the library
never recomputes them ad hoc.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Spreading factors the LoRaWAN standard allows (bits per symbol).
VALID_SPREADING_FACTORS = tuple(range(6, 13))

#: LoRaWAN channel bandwidths in Hz (US ISM band uses 125 kHz and 500 kHz).
VALID_BANDWIDTHS = (125_000.0, 250_000.0, 500_000.0)


@dataclass(frozen=True)
class LoRaParams:
    """Static parameters of one LoRa CSS link.

    Parameters
    ----------
    spreading_factor:
        Number of bits encoded per chirp symbol (paper Sec. 3, "Rate
        Adaptation"; LoRaWAN allows up to 12).
    bandwidth:
        Chirp sweep bandwidth in Hz.
    preamble_len:
        Number of base (symbol-0) up-chirps that open every frame.
    oversampling:
        Receiver samples per chip.  The default of 1 (``Fs == bandwidth``)
        matches the critically sampled model used throughout the paper's
        analysis; the modulator also supports integer oversampling.
    """

    spreading_factor: int = 8
    bandwidth: float = 125_000.0
    preamble_len: int = 8
    oversampling: int = 1
    carrier_hz: float = field(default=902_000_000.0)

    def __post_init__(self) -> None:
        if self.spreading_factor not in VALID_SPREADING_FACTORS:
            raise ValueError(
                f"spreading_factor must be one of {VALID_SPREADING_FACTORS}, "
                f"got {self.spreading_factor}"
            )
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")
        if self.preamble_len < 1:
            raise ValueError(f"preamble_len must be >= 1, got {self.preamble_len}")
        if self.oversampling < 1 or int(self.oversampling) != self.oversampling:
            raise ValueError(f"oversampling must be a positive integer, got {self.oversampling}")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def chips_per_symbol(self) -> int:
        """Number of chips (and FFT bins) per symbol: ``2**SF``."""
        return 1 << self.spreading_factor

    @property
    def samples_per_symbol(self) -> int:
        """Receiver samples per symbol (chips times oversampling)."""
        return self.chips_per_symbol * self.oversampling

    @property
    def sample_rate(self) -> float:
        """Complex baseband sample rate in Hz."""
        return self.bandwidth * self.oversampling

    @property
    def symbol_duration(self) -> float:
        """Chirp duration in seconds: ``2**SF / BW``."""
        return self.chips_per_symbol / self.bandwidth

    @property
    def bin_width_hz(self) -> float:
        """Width of one dechirped FFT bin in Hz: ``BW / 2**SF``.

        A carrier-frequency offset of one bin width moves the dechirped peak
        by exactly one symbol value, which is why Choir measures offsets in
        units of bins.
        """
        return self.bandwidth / self.chips_per_symbol

    @property
    def raw_bit_rate(self) -> float:
        """Uncoded PHY bit rate in bits/s: ``SF / T_sym``."""
        return self.spreading_factor / self.symbol_duration

    def symbol_value_range(self) -> range:
        """All valid symbol values for this spreading factor."""
        return range(self.chips_per_symbol)

    def hz_to_bins(self, freq_hz: float) -> float:
        """Convert a frequency offset in Hz to dechirped-FFT bins."""
        return freq_hz / self.bin_width_hz

    def bins_to_hz(self, bins: float) -> float:
        """Convert a dechirped-FFT bin offset to Hz."""
        return bins * self.bin_width_hz

    def seconds_to_samples(self, seconds: float) -> float:
        """Convert a duration to (possibly fractional) samples."""
        return seconds * self.sample_rate
