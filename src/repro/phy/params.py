"""LoRa PHY parameter set.

A :class:`LoRaParams` bundles the degrees of freedom of the LoRaWAN PHY the
paper uses: spreading factor (7..12), bandwidth (125/250/500 kHz) and the
preamble length.  All derived quantities (symbol duration, samples per
symbol, FFT bin width, raw bit rate) hang off it so the rest of the library
never recomputes them ad hoc.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Spreading factors the LoRaWAN standard allows (bits per symbol).
VALID_SPREADING_FACTORS = tuple(range(6, 13))

#: LoRaWAN channel bandwidths in Hz (US ISM band uses 125 kHz and 500 kHz).
VALID_BANDWIDTHS = (125_000.0, 250_000.0, 500_000.0)


@dataclass(frozen=True)
class LoRaParams:
    """Static parameters of one LoRa CSS link.

    Parameters
    ----------
    spreading_factor:
        Number of bits encoded per chirp symbol (paper Sec. 3, "Rate
        Adaptation"; LoRaWAN allows up to 12).
    bandwidth:
        Chirp sweep bandwidth in Hz.
    preamble_len:
        Number of base (symbol-0) up-chirps that open every frame.
    oversampling:
        Receiver samples per chip.  The default of 1 (``Fs == bandwidth``)
        matches the critically sampled model used throughout the paper's
        analysis; the modulator also supports integer oversampling.
    """

    spreading_factor: int = 8
    bandwidth: float = 125_000.0
    preamble_len: int = 8
    oversampling: int = 1
    carrier_hz: float = field(default=902_000_000.0)

    def __post_init__(self) -> None:
        if self.spreading_factor not in VALID_SPREADING_FACTORS:
            raise ValueError(
                f"spreading_factor must be one of {VALID_SPREADING_FACTORS}, "
                f"got {self.spreading_factor}"
            )
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")
        if self.preamble_len < 1:
            raise ValueError(f"preamble_len must be >= 1, got {self.preamble_len}")
        if self.oversampling < 1 or int(self.oversampling) != self.oversampling:
            raise ValueError(f"oversampling must be a positive integer, got {self.oversampling}")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def chips_per_symbol(self) -> int:
        """Number of chips (and FFT bins) per symbol: ``2**SF``."""
        return 1 << self.spreading_factor

    @property
    def samples_per_symbol(self) -> int:
        """Receiver samples per symbol (chips times oversampling)."""
        return self.chips_per_symbol * self.oversampling

    @property
    def sample_rate(self) -> float:
        """Complex baseband sample rate in Hz."""
        return self.bandwidth * self.oversampling

    @property
    def symbol_duration(self) -> float:
        """Chirp duration in seconds: ``2**SF / BW``."""
        return self.chips_per_symbol / self.bandwidth

    @property
    def bin_width_hz(self) -> float:
        """Width of one dechirped FFT bin in Hz: ``BW / 2**SF``.

        A carrier-frequency offset of one bin width moves the dechirped peak
        by exactly one symbol value, which is why Choir measures offsets in
        units of bins.
        """
        return self.bandwidth / self.chips_per_symbol

    @property
    def raw_bit_rate(self) -> float:
        """Uncoded PHY bit rate in bits/s: ``SF / T_sym``."""
        return self.spreading_factor / self.symbol_duration

    def symbol_value_range(self) -> range:
        """All valid symbol values for this spreading factor."""
        return range(self.chips_per_symbol)

    def hz_to_bins(self, freq_hz: float) -> float:
        """Convert a frequency offset in Hz to dechirped-FFT bins."""
        return freq_hz / self.bin_width_hz

    def bins_to_hz(self, bins: float) -> float:
        """Convert a dechirped-FFT bin offset to Hz."""
        return bins * self.bin_width_hz

    def seconds_to_samples(self, seconds: float) -> float:
        """Convert a duration to (possibly fractional) samples."""
        return seconds * self.sample_rate


@dataclass(frozen=True)
class ChannelPlan:
    """A uniform grid of LoRa uplink channels served by one wideband front end.

    Real LoRaWAN gateways never listen to a single 125 kHz channel: the
    EU868 and US915 regional plans both define (at least) eight uplink
    channels that one base station monitors simultaneously.  A
    :class:`ChannelPlan` describes that grid -- how many channels, how wide
    each is, how far apart their centers sit -- and is what the
    multi-channel gateway's channelizer and the wideband traffic
    synthesizer agree on.

    Parameters
    ----------
    n_channels:
        Number of uplink channels in the plan.
    bandwidth:
        Per-channel LoRa bandwidth in Hz (one of :data:`VALID_BANDWIDTHS`).
    spacing_hz:
        Distance between adjacent channel centers.  ``0`` (the default)
        means *contiguous* channels (``spacing == bandwidth``), which is
        what the critically sampled polyphase channelizer consumes; plans
        with guard bands between channels (US915 spaces 125 kHz channels
        200 kHz apart) can be described but need a resampling front end.
    first_center_hz:
        RF center frequency of channel 0; the remaining centers ascend in
        ``spacing_hz`` steps.
    """

    n_channels: int = 8
    bandwidth: float = 125_000.0
    spacing_hz: float = 0.0
    first_center_hz: float = 867_100_000.0

    def __post_init__(self) -> None:
        if self.n_channels < 1:
            raise ValueError(f"n_channels must be >= 1, got {self.n_channels}")
        if self.bandwidth not in VALID_BANDWIDTHS:
            raise ValueError(
                f"bandwidth must be one of {VALID_BANDWIDTHS}, got {self.bandwidth}"
            )
        if self.spacing_hz == 0.0:
            object.__setattr__(self, "spacing_hz", self.bandwidth)
        if self.spacing_hz < self.bandwidth:
            raise ValueError(
                f"spacing_hz ({self.spacing_hz}) must be >= bandwidth "
                f"({self.bandwidth}); overlapping channels are not a plan"
            )

    # ------------------------------------------------------------------
    # Named regional plans
    # ------------------------------------------------------------------
    @classmethod
    def eu868_style(cls, n_channels: int = 8) -> "ChannelPlan":
        """A contiguous EU868-style grid of 125 kHz channels."""
        return cls(
            n_channels=n_channels,
            bandwidth=125_000.0,
            first_center_hz=867_100_000.0,
        )

    @classmethod
    def us915_sub_band(cls, sub_band: int = 0) -> "ChannelPlan":
        """One US915 sub-band: eight 125 kHz channels spaced 200 kHz apart.

        Note the 200 kHz spacing: this plan documents the real grid but is
        *not* critically stacked, so the polyphase channelizer rejects it
        (see :meth:`is_critically_stacked`).
        """
        if not 0 <= sub_band < 8:
            raise ValueError(f"sub_band must be in [0, 8), got {sub_band}")
        return cls(
            n_channels=8,
            bandwidth=125_000.0,
            spacing_hz=200_000.0,
            first_center_hz=902_300_000.0 + sub_band * 1_600_000.0,
        )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def is_critically_stacked(self) -> bool:
        """Whether channels tile the band edge-to-edge (spacing == BW)."""
        return abs(self.spacing_hz - self.bandwidth) < 1e-9

    @property
    def wideband_rate(self) -> float:
        """Complex sample rate of the wideband front end covering the plan."""
        return self.n_channels * self.spacing_hz

    @property
    def oversample_factor(self) -> int:
        """Wideband samples per narrowband (per-channel) sample."""
        return self.n_channels

    @property
    def lo_hz(self) -> float:
        """RF frequency the wideband front end mixes to baseband zero."""
        return self.first_center_hz + (self.n_channels // 2) * self.spacing_hz

    def validate_channel(self, channel: int) -> int:
        """Return ``channel`` if it exists in this plan, else raise."""
        if not 0 <= channel < self.n_channels:
            raise ValueError(
                f"channel must be in [0, {self.n_channels}), got {channel}"
            )
        return channel

    def center_hz(self, channel: int) -> float:
        """RF center frequency of one channel."""
        self.validate_channel(channel)
        return self.first_center_hz + channel * self.spacing_hz

    def offset_hz(self, channel: int) -> float:
        """Baseband offset of one channel's center within the wideband."""
        self.validate_channel(channel)
        return (channel - self.n_channels // 2) * self.spacing_hz

    def channel_params(
        self,
        spreading_factor: int,
        preamble_len: int = 8,
        oversampling: int = 1,
    ) -> LoRaParams:
        """Narrowband :class:`LoRaParams` for one shard of this plan."""
        return LoRaParams(
            spreading_factor=spreading_factor,
            bandwidth=self.bandwidth,
            preamble_len=preamble_len,
            oversampling=oversampling,
            carrier_hz=self.first_center_hz,
        )
