"""The LoRa coding chain: Gray mapping, Hamming FEC, interleaving, whitening.

LoRa processes payload bits through (in transmit order) whitening, Hamming
encoding at coding rate 4/(4+CR), diagonal interleaving across a block of
symbols, and Gray mapping onto symbol values.  We implement each stage and
its inverse from scratch.  Sec. 7.2 of the paper leans on this chain when it
notes that interleaving/coding can make near-identical sensor readings
diverge after coding, motivating Choir's data splicing
(:mod:`repro.sensing.splicing`).
"""

from __future__ import annotations

import numpy as np

# ----------------------------------------------------------------------
# Gray code
# ----------------------------------------------------------------------


def gray_encode(value: int | np.ndarray) -> int | np.ndarray:
    """Binary-reflected Gray code of ``value`` (element-wise for arrays)."""
    value = np.asarray(value)
    result = value ^ (value >> 1)
    if result.ndim == 0:
        return int(result)
    return result


def gray_decode(code: int | np.ndarray) -> int | np.ndarray:
    """Inverse of :func:`gray_encode`."""
    code = np.asarray(code, dtype=np.int64)
    value = code.copy()
    shift = 1
    # For 64-bit ints, 6 doubling steps cover every bit position.
    while shift < 64:
        value ^= value >> shift
        shift <<= 1
    if value.ndim == 0:
        return int(value)
    return value


# ----------------------------------------------------------------------
# Hamming FEC
# ----------------------------------------------------------------------

# LoRa's FEC protects each 4-bit nibble with CR in {1..4} parity bits,
# giving rates 4/5 .. 4/8.  CR >= 3 corrects single-bit errors (true
# Hamming(7,4)/(8,4)); CR 1..2 only detect.

_HAMMING_G = np.array(
    # Generator for Hamming(8,4): data bits d0..d3 then parities p0..p3.
    [
        [1, 0, 0, 0, 1, 1, 0, 1],
        [0, 1, 0, 0, 1, 0, 1, 1],
        [0, 0, 1, 0, 0, 1, 1, 1],
        [0, 0, 0, 1, 1, 1, 1, 0],
    ],
    dtype=np.uint8,
)


def _nibble_to_bits(nibble: int) -> np.ndarray:
    return np.array([(nibble >> i) & 1 for i in range(4)], dtype=np.uint8)


def _bits_to_nibble(bits: np.ndarray) -> int:
    return int(sum(int(b) << i for i, b in enumerate(bits[:4])))


def hamming_encode(nibbles: np.ndarray | list, coding_rate: int = 4) -> np.ndarray:
    """Encode 4-bit nibbles with ``coding_rate`` parity bits each.

    Returns a flat uint8 bit array of length ``len(nibbles) * (4 + CR)``.
    """
    if not 1 <= coding_rate <= 4:
        raise ValueError(f"coding_rate must be in 1..4, got {coding_rate}")
    nibbles = np.asarray(nibbles, dtype=int)
    out = []
    for nib in nibbles:
        if not 0 <= nib < 16:
            raise ValueError(f"nibble out of range: {nib}")
        data = _nibble_to_bits(int(nib))
        codeword = (data @ _HAMMING_G) % 2
        out.append(codeword[: 4 + coding_rate])
    if not out:
        return np.zeros(0, dtype=np.uint8)
    return np.concatenate(out).astype(np.uint8)


def _syndrome_correct(codeword: np.ndarray) -> np.ndarray:
    """Correct a single bit error in a Hamming(8,4) codeword in place."""
    data = codeword[:4]
    n_parity = len(codeword) - 4
    expected = (data @ _HAMMING_G) % 2
    err = (expected[4 : 4 + n_parity] != codeword[4:]).astype(np.uint8)
    if not err.any():
        return codeword
    # Try flipping each bit and accept the flip that zeroes the syndrome.
    for i in range(len(codeword)):
        trial = codeword.copy()
        trial[i] ^= 1
        expected = (trial[:4] @ _HAMMING_G) % 2
        if np.array_equal(expected[4 : 4 + n_parity], trial[4 : 4 + n_parity]):
            return trial
    return codeword  # uncorrectable; leave as-is


def hamming_decode(bits: np.ndarray, coding_rate: int = 4) -> tuple[np.ndarray, int]:
    """Decode a flat bit array produced by :func:`hamming_encode`.

    Returns ``(nibbles, corrected)`` where ``corrected`` counts codewords in
    which a single-bit correction was applied (only possible for CR >= 3).
    """
    if not 1 <= coding_rate <= 4:
        raise ValueError(f"coding_rate must be in 1..4, got {coding_rate}")
    bits = np.asarray(bits, dtype=np.uint8)
    block = 4 + coding_rate
    if bits.size % block != 0:
        raise ValueError(f"bit stream length {bits.size} is not a multiple of {block}")
    nibbles = []
    corrected = 0
    for start in range(0, bits.size, block):
        codeword = bits[start : start + block].copy()
        if coding_rate >= 3:
            fixed = _syndrome_correct(codeword)
            if not np.array_equal(fixed, codeword):
                corrected += 1
            codeword = fixed
        nibbles.append(_bits_to_nibble(codeword))
    return np.array(nibbles, dtype=np.uint8), corrected


# ----------------------------------------------------------------------
# Diagonal interleaver
# ----------------------------------------------------------------------


def interleave(bits: np.ndarray, spreading_factor: int, codeword_len: int) -> np.ndarray:
    """LoRa-style diagonal interleaver.

    Takes ``spreading_factor * codeword_len`` bits arranged as
    ``codeword_len`` codewords of ``spreading_factor`` bits and scatters each
    codeword across symbols so a symbol erasure damages at most one bit per
    codeword.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    expected = spreading_factor * codeword_len
    if bits.size != expected:
        raise ValueError(f"expected {expected} bits, got {bits.size}")
    matrix = bits.reshape(codeword_len, spreading_factor)
    out = np.zeros_like(matrix)
    for i in range(codeword_len):
        out[i] = np.roll(matrix[i], i)
    return out.T.reshape(-1)


def deinterleave(bits: np.ndarray, spreading_factor: int, codeword_len: int) -> np.ndarray:
    """Inverse of :func:`interleave`."""
    bits = np.asarray(bits, dtype=np.uint8)
    expected = spreading_factor * codeword_len
    if bits.size != expected:
        raise ValueError(f"expected {expected} bits, got {bits.size}")
    matrix = bits.reshape(spreading_factor, codeword_len).T
    out = np.zeros_like(matrix)
    for i in range(codeword_len):
        out[i] = np.roll(matrix[i], -i)
    return out.reshape(-1)


# ----------------------------------------------------------------------
# Whitening
# ----------------------------------------------------------------------


def _whitening_sequence(n: int) -> np.ndarray:
    """LFSR whitening sequence (x^8 + x^6 + x^5 + x^4 + 1, seed 0xFF)."""
    state = 0xFF
    out = np.zeros(n, dtype=np.uint8)
    for i in range(n):
        out[i] = state & 1
        feedback = ((state >> 7) ^ (state >> 5) ^ (state >> 4) ^ (state >> 3)) & 1
        state = ((state << 1) | feedback) & 0xFF
    return out


def whiten(bits: np.ndarray) -> np.ndarray:
    """XOR a bit stream with the LoRa whitening sequence (involutive)."""
    bits = np.asarray(bits, dtype=np.uint8)
    return bits ^ _whitening_sequence(bits.size)


# ----------------------------------------------------------------------
# Bit/byte/symbol packing helpers
# ----------------------------------------------------------------------


def bytes_to_bits(data: bytes) -> np.ndarray:
    """Unpack bytes LSB-first into a uint8 bit array."""
    arr = np.frombuffer(bytes(data), dtype=np.uint8)
    return np.unpackbits(arr, bitorder="little")


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Pack an LSB-first bit array back into bytes (zero-padded)."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.size % 8:
        bits = np.concatenate([bits, np.zeros(8 - bits.size % 8, dtype=np.uint8)])
    return np.packbits(bits, bitorder="little").tobytes()


def bits_to_symbols(bits: np.ndarray, spreading_factor: int) -> np.ndarray:
    """Group bits (LSB-first) into Gray-mapped symbol values."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.size % spreading_factor:
        pad = spreading_factor - bits.size % spreading_factor
        bits = np.concatenate([bits, np.zeros(pad, dtype=np.uint8)])
    groups = bits.reshape(-1, spreading_factor)
    weights = (1 << np.arange(spreading_factor)).astype(np.int64)
    values = groups @ weights
    return np.asarray(gray_encode(values), dtype=np.int64)


def symbols_to_bits(symbols: np.ndarray, spreading_factor: int) -> np.ndarray:
    """Inverse of :func:`bits_to_symbols`."""
    symbols = np.asarray(symbols, dtype=np.int64)
    values = np.asarray(gray_decode(symbols), dtype=np.int64)
    bits = ((values[:, None] >> np.arange(spreading_factor)) & 1).astype(np.uint8)
    return bits.reshape(-1)
