"""CRC-16/CCITT used by the LoRa payload integrity check."""

from __future__ import annotations

_CRC_POLY = 0x1021
_CRC_INIT = 0x0000


def crc16_ccitt(data: bytes, init: int = _CRC_INIT) -> int:
    """Compute CRC-16/CCITT (polynomial 0x1021) over ``data``."""
    crc = init & 0xFFFF
    for byte in bytes(data):
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ _CRC_POLY) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


def append_crc(data: bytes) -> bytes:
    """Return ``data`` with its 2-byte big-endian CRC appended."""
    crc = crc16_ccitt(data)
    return bytes(data) + bytes([(crc >> 8) & 0xFF, crc & 0xFF])


def check_crc(data_with_crc: bytes) -> bool:
    """Validate a byte string produced by :func:`append_crc`."""
    if len(data_with_crc) < 2:
        return False
    payload, trailer = data_with_crc[:-2], data_with_crc[-2:]
    crc = crc16_ccitt(payload)
    return trailer == bytes([(crc >> 8) & 0xFF, crc & 0xFF])
