#!/usr/bin/env python
"""Dense-city scenario: 30 nodes across a campus, 10 colliding at a time.

Recreates the paper's density evaluation (Sec. 9.2 / Fig. 8) end to end:
nodes are placed on the synthetic 3.4 km x 3.2 km campus, their link SNRs
come from the urban channel model, and three MACs compete over the same
population -- LoRaWAN's slotted ALOHA, an oracle TDMA scheduler, and
Choir's beacon-solicited concurrent transmissions.

Run:  python examples/dense_city_network.py
"""

import numpy as np

from repro import (
    AlohaMac,
    CampusTestbed,
    ChoirMac,
    ChoirPhyModel,
    LoRaParams,
    NetworkSimulator,
    NodeConfig,
    OracleMac,
    SingleUserPhy,
)


def main() -> None:
    params = LoRaParams(spreading_factor=8, bandwidth=125_000.0, preamble_len=8)
    rng = np.random.default_rng(11)

    # 30 nodes within the base station's single-node service area (the
    # urban model puts that edge near 500 m at SF8; nodes further out need
    # Sec. 7 teams -- see range_extension_teams.py).
    testbed = CampusTestbed(rng_seed=11)
    placed = [
        testbed.place_at_distance(i, float(rng.uniform(60.0, 450.0)))
        for i in range(30)
    ]
    nodes = [
        NodeConfig(node.node_id, snr_db=testbed.mean_snr_db(node)) for node in placed
    ]
    print(f"{len(nodes)} nodes placed 60-450 m from the base station")
    print(
        "link SNRs: "
        + ", ".join(f"{cfg.snr_db:.0f}" for cfg in nodes[:12])
        + " ... dB"
    )

    print(f"\nsimulating 60 s of saturated uplink traffic ({len(nodes)} nodes):")
    print(f"{'system':10s} {'throughput':>12s} {'latency':>10s} {'tx/packet':>10s}")
    results = {}
    for name, mac, phy in [
        ("ALOHA", AlohaMac(), SingleUserPhy(params)),
        ("Oracle", OracleMac(), SingleUserPhy(params)),
        ("Choir", ChoirMac(), ChoirPhyModel(params)),
    ]:
        sim = NetworkSimulator(params, phy, mac, nodes, rng=np.random.default_rng(3))
        metrics = sim.run(60.0)
        results[name] = metrics
        print(
            f"{name:10s} {metrics.throughput_bps:9.0f} bps "
            f"{metrics.mean_latency_s:8.3f} s {metrics.transmissions_per_packet:9.2f}"
        )

    choir, aloha, oracle = results["Choir"], results["ALOHA"], results["Oracle"]
    print(
        f"\nChoir gains: {choir.throughput_bps / aloha.throughput_bps:.1f}x "
        f"throughput vs ALOHA ({choir.throughput_bps / oracle.throughput_bps:.1f}x "
        f"vs Oracle), {aloha.mean_latency_s / choir.mean_latency_s:.1f}x lower "
        f"latency vs ALOHA, {aloha.transmissions_per_packet / choir.transmissions_per_packet:.1f}x "
        "fewer transmissions"
    )
    print("(paper, 10 concurrent users: 29.02x / 6.84x throughput, 19.37x latency)")


if __name__ == "__main__":
    main()
