#!/usr/bin/env python
"""Sensing campaign: correlated readings, grouping, splicing, coarse recovery.

Recreates the paper's Sec. 9.4 pipeline: 36 temperature/humidity sensors on
four floors of a campus building, grouped for team transmission by three
strategies (random / per-floor / distance-from-center), their readings
spliced into MSB chunks so teams transmit identical packets, and the
base station's coarse view reconstructed from whatever chunks the link
budget delivers at each distance.

Run:  python examples/sensor_field_campaign.py
"""

import numpy as np

from repro import EnvironmentField, LinkModel, SensorNode
from repro.sensing import (
    group_by_center_distance,
    group_by_floor,
    group_random,
    grouping_error,
    msb_overlap,
    splice_bits,
    merge_chunks,
)
from repro.sensing.sensors import (
    TEMP_RANGE_C,
    bits_to_code,
    code_to_bits,
    dequantize_reading,
)


def main() -> None:
    rng = np.random.default_rng(33)
    field = EnvironmentField(rng_seed=33)
    sensors = [
        SensorNode(
            sensor_id=i,
            u=float(rng.uniform(0.03, 0.97)),
            v=float(rng.uniform(0.03, 0.97)),
            floor=i % 4,
        )
        for i in range(36)
    ]
    readings = {s.sensor_id: s.read_temperature(field, rng) for s in sensors}
    print(
        f"36 sensors, temperature range "
        f"{min(readings.values()):.1f}..{max(readings.values()):.1f} C"
    )

    # Fig. 11(a): which grouping strategy puts agreeing sensors together?
    print("\ngrouping strategy vs within-group disagreement (paper Fig. 11a):")
    strategies = {
        "random": group_random(sensors, 4, rng=rng),
        "by floor": group_by_floor(sensors),
        "center distance": group_by_center_distance(sensors, 4),
    }
    for name, groups in strategies.items():
        error = grouping_error(groups, readings, TEMP_RANGE_C)
        print(f"  {name:16s}: {100 * error:.1f} % of range")

    # Splicing: the scheduler refines the best band into sub-teams of
    # sensors whose *readings* agree (Sec. 7.1, "one can learn the extent
    # of these correlations over time"), so each sub-team's shared MSBs
    # become a common packet.
    best_band = group_by_center_distance(sensors, 4)[0]
    ordered = sorted(best_band, key=lambda s: readings[s.sensor_id])
    subteams = [ordered[i : i + 4] for i in range(0, len(ordered), 4)]
    print(f"\nbest band ({len(best_band)} sensors) split into reading-sorted sub-teams:")
    codes = []
    for team in subteams:
        team_codes = [
            int(round((readings[s.sensor_id] - TEMP_RANGE_C[0]) / 80.0 * 4095))
            for s in team
        ]
        overlap = msb_overlap(team_codes, 12)
        print(
            f"  sub-team of {len(team)}: readings "
            + "/".join(f"{readings[s.sensor_id]:.1f}" for s in team)
            + f" C -> top {overlap} of 12 bits shared"
        )
        codes.extend(team_codes)

    # Fig. 10: the base station's coarse view degrades gracefully with
    # distance as fewer spliced chunks survive the pooled link budget.
    link = LinkModel()
    chunk_sizes = [4, 3, 3, 2]
    team_size = len(best_band)
    print("\ncoarse recovery vs distance (paper Fig. 10):")
    print(f"{'distance':>9s} {'chunks':>7s} {'example recovery':>30s}")
    for distance in (500.0, 1500.0, 2500.0):
        pooled = link.mean_snr_db(distance) + 10 * np.log10(team_size)
        margin = pooled - (-25.0)
        n_chunks = int(np.clip(1 + margin // 6.0, 0, 4)) if margin >= 0 else 0
        code = codes[0]
        chunks = splice_bits(code_to_bits(code, 12), chunk_sizes)
        received = [c if i < n_chunks else None for i, c in enumerate(chunks)]
        bits, _ = merge_chunks(received, chunk_sizes)
        recovered = dequantize_reading(bits_to_code(bits), TEMP_RANGE_C, 12)
        truth = dequantize_reading(code, TEMP_RANGE_C, 12)
        print(
            f"{distance:8.0f}m {n_chunks:7d} "
            f"{truth:10.2f} C -> {recovered:6.2f} C ({abs(recovered - truth):.2f} C off)"
        )


if __name__ == "__main__":
    main()
