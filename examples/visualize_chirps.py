#!/usr/bin/env python
"""Visualize the PHY: chirps, collisions, and offset fingerprints (ASCII).

Terminal renditions of the paper's illustrative figures:

* Fig. 2 -- the spectrogram of a LoRa chirp sweeping the band;
* Fig. 3 -- a two-user collision's dechirped FFT: two peaks whose
  *fractional* positions identify the transmitters;
* Fig. 7(a) -- the CDF of fractional offsets across simulated boards.

Run:  python examples/visualize_chirps.py
"""

import numpy as np

from repro import LoRaParams, LoRaRadio
from repro.channel import CollisionChannel
from repro.core.dechirp import dechirp_windows, oversampled_spectrum, spectrogram
from repro.hardware import OscillatorModel, TimingModel
from repro.phy import modulate_symbols
from repro.utils.ascii_plot import ascii_cdf, ascii_line


def render_spectrogram(params: LoRaParams) -> None:
    print("=" * 72)
    print("Fig. 2: spectrogram of one LoRa chirp (frequency sweeps the band)")
    print("=" * 72)
    waveform = modulate_symbols(params, [0])
    times, freqs, magnitude = spectrogram(params, waveform, window_len=32, hop=4)
    peak_track = freqs[np.argmax(magnitude, axis=1)] / 1e3
    print(ascii_line(peak_track, label="instantaneous frequency (kHz) over one symbol"))
    print()


def render_collision_fft(params: LoRaParams) -> None:
    print("=" * 72)
    print("Fig. 3: dechirped FFT of a 2-user collision (same data symbol)")
    print("=" * 72)
    rng = np.random.default_rng(3)
    radios = [
        LoRaRadio(
            params,
            oscillator=OscillatorModel(params.bins_to_hz(mu)),
            timing=TimingModel(0.0),
            node_id=i,
            rng=rng,
        )
        for i, mu in enumerate((40.2, 90.6))
    ]
    channel = CollisionChannel(params, noise_power=1.0)
    packet = channel.receive(
        [(r, np.zeros(3, dtype=int), 18.0 + 0j) for r in radios], rng=rng
    )
    windows = dechirp_windows(
        params, packet.samples, n_windows=1, start=params.samples_per_symbol
    )
    spectrum = np.abs(oversampled_spectrum(windows[0], 10))
    bins = np.arange(spectrum.size) / 10.0
    region = (bins > 20) & (bins < 110)
    print(
        ascii_line(
            spectrum[region],
            label="dechirped spectrum, bins 20..110 "
            "(two sinc peaks at the two users' offsets: 40.2 and 90.6)",
        )
    )
    print()


def render_offset_cdf(params: LoRaParams) -> None:
    print("=" * 72)
    print("Fig. 7(a): CDF of fractional hardware offsets across 60 boards")
    print("=" * 72)
    rng = np.random.default_rng(4)
    fractions = []
    for _ in range(60):
        radio = LoRaRadio(params, rng=rng)
        mu = params.hz_to_bins(radio.oscillator.offset_hz) - (
            radio.timing.offset_s * params.sample_rate
        )
        fractions.append(mu % 1.0)
    print(
        ascii_cdf(
            np.array(fractions),
            label="empirical CDF of frac(CFO+TO) -- near the uniform diagonal",
        )
    )
    print()


def main() -> None:
    params = LoRaParams(spreading_factor=8, bandwidth=125_000.0, preamble_len=8)
    render_spectrogram(params)
    render_collision_fft(params)
    render_offset_cdf(params)


if __name__ == "__main__":
    main()
