#!/usr/bin/env python
"""Range extension: a team of below-range sensors reaches the base station.

Recreates the paper's Sec. 9.3 result at the waveform level: sensors sit
beyond the single-node communication range (each one's packets are
undetectable alone), but transmitting *identical data* concurrently after
a beacon lets the Choir receiver pool their energy -- detection by
preamble accumulation, decoding by spectral-fingerprint correlation.

Run:  python examples/range_extension_teams.py
"""

import numpy as np

from repro import ChoirDecoder, CollisionChannel, LinkModel, LoRaParams, LoRaRadio


def main() -> None:
    params = LoRaParams(spreading_factor=8, bandwidth=125_000.0, preamble_len=8)
    link = LinkModel()
    rng = np.random.default_rng(21)

    # Link-budget view (at the minimum LoRaWAN rate, SF12 -- the paper's
    # range yardstick):
    print(f"single-node range (minimum rate): {link.range_for_snr(-25.0):.0f} m")
    print(f"30-node team range: {link.range_for_snr(-25.0 - 10 * np.log10(30)):.0f} m")
    print("(paper: 1 km alone -> 2.65 km with 30-node teams)\n")

    # Waveform demonstration at SF8 (decode floor ~ -15 dB, single-node
    # edge ~ 520 m): sensors 40 % past that edge are individually silent
    # but decodable as a team.
    sf8_range = link.range_for_snr(-15.0)
    distance = 1.4 * sf8_range
    per_user_snr = link.mean_snr_db(distance)
    print(
        f"SF8 single-node edge: {sf8_range:.0f} m; placing sensors at "
        f"{distance:.0f} m (per-user SNR {per_user_snr:.1f} dB, below the "
        "-15 dB SF8 floor)"
    )

    shared_reading = rng.integers(0, params.chips_per_symbol, 12)
    amplitude = 10 ** (per_user_snr / 20.0)
    channel = CollisionChannel(params, noise_power=1.0)
    decoder = ChoirDecoder(params, rng=rng)

    print(f"\n{'team size':>10s} {'detected':>9s} {'members':>8s} {'accuracy':>9s}")
    for team_size in (1, 4, 8, 16):
        transmissions = [
            (LoRaRadio(params, node_id=i, rng=rng), shared_reading, amplitude + 0j)
            for i in range(team_size)
        ]
        packet = channel.receive(transmissions, rng=rng)
        result = decoder.decode_team(packet.samples, shared_reading.size)
        accuracy = (
            float(np.mean(result.symbols == shared_reading)) if result.detected else 0.0
        )
        print(
            f"{team_size:10d} {str(bool(result.detected)):>9s} "
            f"{result.n_members_detected:8d} {accuracy:9.2f}"
        )
    print(
        "\nA lone sensor at this distance is invisible; teams of a few "
        "sensors are decoded symbol-perfect."
    )


if __name__ == "__main__":
    main()
