#!/usr/bin/env python
"""Quickstart: decode a three-way LoRa collision with a single antenna.

Three commodity LoRa clients -- each with its own crystal offset and wake-up
jitter -- transmit encoded payloads at the same time on the same spreading
factor.  A standard LoRaWAN gateway would decode none of them; the Choir
receiver disentangles all three using nothing but their hardware offsets.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ChoirDecoder,
    CollisionChannel,
    CssDemodulator,
    LoRaFramer,
    LoRaParams,
    LoRaRadio,
)


def main() -> None:
    params = LoRaParams(spreading_factor=8, bandwidth=125_000.0, preamble_len=8)
    rng = np.random.default_rng(9)
    framer = LoRaFramer(params, coding_rate=4)

    payloads = [b"station-A: 21.4C", b"station-B: 19.8C", b"station-C: 22.3C"]
    frames = [framer.encode(p) for p in payloads]
    n_symbols = frames[0].n_symbols

    # Three clients with randomly drawn (realistic) hardware imperfections.
    radios = [LoRaRadio(params, node_id=i, rng=rng) for i in range(3)]
    for radio in radios:
        print(
            f"node {radio.node_id}: CFO {radio.oscillator.offset_hz / 1e3:+.2f} kHz "
            f"({params.hz_to_bins(radio.oscillator.offset_hz):+.2f} bins), "
            f"wake-up offset {radio.timing.offset_s * 1e6:.1f} us"
        )

    # All three transmit simultaneously; the base station hears the sum.
    channel = CollisionChannel(params, noise_power=1.0)
    packet = channel.receive(
        [(r, f.symbols, 12.0 + 0j) for r, f in zip(radios, frames)], rng=rng
    )
    print(f"\ncaptured {packet.samples.size} samples of a 3-way collision")

    # A standard receiver decodes one symbol stream; at best it captures
    # the strongest transmitter, never all three.
    standard = CssDemodulator(params).demodulate_frame(packet.samples, n_symbols)
    standard_result = framer.decode(standard, len(payloads[0]))
    standard_hits = sum(
        standard_result.crc_ok and standard_result.payload == p for p in payloads
    )
    print(f"standard LoRa receiver: {standard_hits}/3 payloads recovered")

    # Choir separates the transmissions by their offset signatures.
    decoder = ChoirDecoder(params, rng=rng)
    users = decoder.decode(packet.samples, n_symbols)
    print(f"Choir found {len(users)} transmitters:")
    recovered = 0
    for user in users:
        result = user.decode_payload(framer, len(payloads[0]))
        status = "OK " if result.crc_ok else "BAD"
        print(
            f"  offset {user.offset_bins:7.3f} bins "
            f"(signature {user.fractional:.3f}) -> [{status}] {result.payload!r}"
        )
        recovered += result.crc_ok
    print(f"Choir receiver: {recovered}/3 payloads recovered")


if __name__ == "__main__":
    main()
