"""Fig. 9 bench: team throughput vs size and max distance vs team size."""

from benchmarks.conftest import emit
from repro.experiments import run_range_throughput, run_range_vs_team
from repro.experiments.fig9_range import validate_team_decode


def test_bench_fig9a_team_throughput(benchmark):
    result = benchmark(run_range_throughput)
    emit(result)
    throughputs = result.column("throughput_bps")
    assert throughputs[0] == 0.0
    assert throughputs[-1] > 0.0


def test_bench_fig9b_range_vs_team(benchmark):
    result = benchmark(run_range_vs_team)
    emit(result)
    assert abs(result.rows[-1]["gain_over_single"] - 2.65) < 0.1


def test_bench_fig9_waveform_validation(benchmark):
    outcome = benchmark(validate_team_decode, 8, -9.0, 8, 4)
    print(f"\nwaveform team check (8 members @ -9 dB): {outcome}")
    assert outcome["detected"]
    assert outcome["symbol_accuracy"] > 0.9
