"""Profiler overhead gate for the streaming gateway.

The kernel-profiling hooks sit on the same hot paths as the tracing
hooks (``with profile_context.kernel(...)`` around every dechirp,
channelizer push, Gram solve, and SIC tier).  With no profiler
installed each hook is one ContextVar read and must be cheap enough
that the standard gateway benchmark stays within 10% of the committed
``BENCH_gateway.json`` realtime factor -- the same band as the tracing
gate, because the 8-channel EU868 baseline's wall clock jitters roughly
+-10% run to run on a shared machine.

Profiler-on is gated *relatively*: against the profiler-off run from
the same session, where machine drift cancels, it must stay within 10%.
That is the subsystem's admission ticket -- a profiler you cannot leave
on for a capacity campaign would never get used.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib

from benchmarks.perf import perf_gate

ROOT = pathlib.Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "bench_report", ROOT / "tools" / "bench_report.py"
)
assert _spec is not None and _spec.loader is not None
bench_report = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_report)


def test_profiler_overhead_within_bands():
    baseline = json.loads((ROOT / "BENCH_gateway.json").read_text())
    base_rt = baseline["throughput"]["realtime_factor"]
    config = baseline["config"]

    # Profiler off (the default): the committed config, rerun fresh.
    # Best-of-3 filters scheduler noise -- the gate asks whether the
    # *hooks* got slower, not whether one run was unlucky.
    off_runs = [bench_report.run_benchmark(**config) for _ in range(3)]
    off = max(off_runs, key=lambda r: r["throughput"]["realtime_factor"])
    off_rt = off["throughput"]["realtime_factor"]

    # Profiler on: same config, same session, best-of-3.
    on_runs = [
        bench_report.run_benchmark(**config, profile=True) for _ in range(3)
    ]
    on = max(on_runs, key=lambda r: r["throughput"]["realtime_factor"])
    on_rt = on["throughput"]["realtime_factor"]

    print(
        f"\nrealtime factor: baseline {base_rt:.3f}x,"
        f" profiler-off {off_rt:.3f}x, profiler-on {on_rt:.3f}x"
        f" (off/baseline = {off_rt / base_rt:.4f},"
        f" on/off = {on_rt / off_rt:.4f})"
    )
    perf_gate(
        off_rt >= 0.90 * base_rt,
        f"profiler-off realtime factor {off_rt:.3f}x fell more than 10%"
        f" below the committed baseline {base_rt:.3f}x",
    )
    perf_gate(
        on_rt >= 0.90 * off_rt,
        f"profiler-on realtime factor {on_rt:.3f}x fell more than 10%"
        f" below the profiler-off run {off_rt:.3f}x from the same session",
    )
    # Correctness never goes through perf_gate: the profiler must not
    # change what gets decoded.
    assert off["counts"]["recovered"] == baseline["counts"]["recovered"]
    assert on["counts"]["recovered"] == baseline["counts"]["recovered"]
