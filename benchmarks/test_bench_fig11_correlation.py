"""Fig. 11 bench: grouping strategies and mixed near/far throughput."""

from benchmarks.conftest import emit
from repro.experiments import run_grouping_error, run_mixed_throughput


def test_bench_fig11a_grouping(benchmark):
    result = benchmark(run_grouping_error)
    emit(result)
    errors = {r["strategy"]: r["temperature_error"] for r in result.rows}
    assert errors["center_dist"] < errors["random"]


def test_bench_fig11b_mixed_throughput(benchmark):
    result = benchmark(run_mixed_throughput, duration_s=20.0)
    emit(result)
    rows = {r["system"]: r for r in result.rows}
    assert rows["choir"]["far_packets_delivered"] > 0
    assert rows["aloha"]["far_packets_delivered"] == 0
    gain_oracle = rows["choir"]["throughput_bps"] / rows["oracle"]["throughput_bps"]
    gain_aloha = rows["choir"]["throughput_bps"] / rows["aloha"]["throughput_bps"]
    print(
        f"\nmixed-population gains: {gain_aloha:.1f}x vs ALOHA, "
        f"{gain_oracle:.1f}x vs Oracle (paper: 29.34x / 5.61x)"
    )
    assert gain_oracle > 3.0
