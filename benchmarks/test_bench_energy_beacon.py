"""Benches: battery-life table and the beacon service map."""

from benchmarks.conftest import emit
from repro.experiments import run_beacon_scheduling, run_energy_comparison


def test_bench_energy_comparison(benchmark):
    result = benchmark(run_energy_comparison, 10, 20.0)
    emit(result)
    by_system = {r["system"]: r for r in result.rows}
    assert (
        by_system["choir"]["battery_life_years"]
        > by_system["aloha"]["battery_life_years"]
    )


def test_bench_beacon_scheduling(benchmark):
    result = benchmark(run_beacon_scheduling)
    emit(result)
    assert result.rows[0]["resolution"] == "full"
