"""Fig. 10 bench: sensor-data resolution vs distance for 30-node teams."""

from benchmarks.conftest import emit
from repro.experiments import run_resolution_vs_distance


def test_bench_fig10_resolution(benchmark):
    result = benchmark(run_resolution_vs_distance)
    emit(result)
    errors = result.column("temperature_error")
    assert all(b >= a - 1e-9 for a, b in zip(errors, errors[1:]))
    at_2500 = next(r for r in result.rows if r["distance_m"] == 2500)
    # Paper: 13.2 % loss of resolution at ~2.5 km.
    assert 0.05 < at_2500["temperature_error"] < 0.25
