"""Fig. 7 bench: hardware offset diversity (a, b) and stability (c, d)."""

from benchmarks.conftest import emit
from repro.experiments import run_offset_cdf, run_offset_stability


def test_bench_fig7ab_offset_cdf(benchmark):
    result = benchmark(run_offset_cdf, n_boards=20)
    emit(result)
    assert result.rows[0]["ks_distance"] < 0.35


def test_bench_fig7cd_offset_stability(benchmark):
    result = benchmark(run_offset_stability, n_pairs=4)
    emit(result)
    stds = [r["cfo_to_stability_pct_of_bin"] for r in result.rows]
    assert stds[0] >= stds[-1]
