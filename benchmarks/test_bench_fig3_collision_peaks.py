"""Fig. 3 bench: peak structure of a two-user same-symbol collision."""

from benchmarks.conftest import emit
from repro.experiments import run_collision_peaks


def test_bench_fig3_collision_peaks(benchmark):
    result = benchmark(run_collision_peaks)
    emit(result)
    coarse, fine = result.rows
    assert coarse["n_peaks"] == 2
    assert fine["n_peaks"] == 2
    assert abs(fine["separation_bins"] - 50.4) < 0.1
