"""Timing-assertion gate that softens to report-only on shared CI runners.

Wall-clock floors (``engine >= 5x scalar``, ``realtime_factor > 1``) are
meaningful on a quiet developer machine but flake on oversubscribed CI
runners, where a noisy neighbour can halve any measurement.  Routing such
assertions through :func:`perf_gate` keeps the hard failure locally and
downgrades it to a loud warning when ``CI=1`` is set (GitHub Actions sets
``CI=true`` automatically) -- the number is still printed in the job log,
it just cannot fail the build.

Correctness assertions (decoded payloads, CRC results) must *never* go
through this gate; only wall-clock comparisons belong here.
"""

from __future__ import annotations

import os
import warnings


def in_ci() -> bool:
    """Whether we are running under a CI environment (``CI`` env var set)."""
    return os.environ.get("CI", "").lower() not in ("", "0", "false")


def perf_gate(condition: bool, message: str) -> None:
    """Assert ``condition`` locally; warn instead when running under CI."""
    if condition:
        return
    if in_ci():
        warnings.warn(
            f"perf gate failed (report-only under CI): {message}",
            stacklevel=2,
        )
        return
    raise AssertionError(message)
