"""Bench: the fast PHY model against the waveform decoder (ground truth)."""

from benchmarks.conftest import emit
from repro.experiments import run_phy_calibration


def test_bench_phy_calibration(benchmark):
    benchmark.pedantic_mode = True
    result = benchmark.pedantic(
        run_phy_calibration,
        kwargs={"user_counts": (2, 4, 8), "n_trials": 2},
        rounds=1,
        iterations=1,
    )
    emit(result)
    small = [r for r in result.rows if r["n_users"] <= 4]
    for row in small:
        assert abs(row["gap"]) <= 0.5
