"""Fig. 5 bench: inter-symbol-interference peaks and de-duplication."""

from benchmarks.conftest import emit
from repro.experiments import run_isi_windows


def test_bench_fig5_isi(benchmark):
    result = benchmark(run_isi_windows)
    emit(result)
    row = result.rows[0]
    assert row["max_peaks_per_window"] <= 4
    assert row["dedup_accuracy"] > 0.9
