"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper table/figure: it times the experiment
with pytest-benchmark and prints the resulting series (run with ``-s`` to
see the tables inline; they also reach the captured-output section).
"""

import sys
import pathlib

# Make `tests.core.conftest`-free imports work when benchmarks run alone.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))


def emit(result) -> None:
    """Print an ExperimentResult table for the harness output."""
    print()
    print(result)
