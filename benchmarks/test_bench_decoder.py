"""Decoder micro-benchmarks: waveform decode cost vs collision size.

Not a paper figure, but the numbers a deployer cares about: how long the
single-antenna Choir receiver spends disentangling a collision, as a
function of how many users collide.
"""

import numpy as np
import pytest

from repro.channel import CollisionChannel
from repro.core import ChoirDecoder
from repro.hardware import LoRaRadio
from repro.phy import LoRaParams

PARAMS = LoRaParams(spreading_factor=8, preamble_len=8)


def _packet(n_users, seed=0, n_symbols=12):
    rng = np.random.default_rng(seed)
    channel = CollisionChannel(PARAMS, noise_power=1.0)
    transmissions = []
    for i in range(n_users):
        radio = LoRaRadio(PARAMS, node_id=i, rng=rng)
        stream = rng.integers(0, 256, n_symbols)
        transmissions.append((radio, stream, complex(rng.uniform(8, 25))))
    return channel.receive(transmissions, rng=rng), n_symbols


@pytest.mark.parametrize("n_users", [1, 2, 5])
def test_bench_decode_collision(benchmark, n_users):
    packet, n_symbols = _packet(n_users, seed=n_users)
    decoder = ChoirDecoder(PARAMS, rng=np.random.default_rng(1))
    users = benchmark(decoder.decode, packet.samples, n_symbols)
    assert len(users) >= max(n_users - 1, 1)


def test_bench_team_decode(benchmark):
    rng = np.random.default_rng(9)
    channel = CollisionChannel(PARAMS, noise_power=1.0)
    shared = rng.integers(0, 256, 10)
    transmissions = [
        (LoRaRadio(PARAMS, node_id=i, rng=rng), shared, 0.33 + 0j) for i in range(10)
    ]
    packet = channel.receive(transmissions, rng=rng)
    decoder = ChoirDecoder(PARAMS, rng=np.random.default_rng(2))
    result = benchmark(decoder.decode_team, packet.samples, 10)
    assert result.detected
