"""Fig. 4 bench: residual-surface evaluation and convexity check."""

from benchmarks.conftest import emit
from repro.experiments import run_residual_surface


def test_bench_fig4_residual_surface(benchmark):
    result = benchmark(run_residual_surface)
    emit(result)
    row = result.rows[0]
    assert row["monotone_rays"] == "4/4"
    assert row["min_location_error_bins"] < 0.1
