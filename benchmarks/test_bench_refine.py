"""Offset-refinement micro-benchmarks: ResidualEngine vs the scalar loop.

Algm. 1's sub-bin refinement is the decode hot path: the scalar reference
(`refine_offsets(..., method="coordinate-scalar")`) rebuilds the tone
matrix and runs an SVD ``lstsq`` per golden-section trial, while the
engine path scores each bracket round as one batched Schur-complement
solve over cached tone columns.  These benchmarks quantify the gap and
assert the ISSUE's >=5x floor for K>=2 users.
"""

import time

import numpy as np
import pytest
from benchmarks.perf import perf_gate

from repro.core.chanest import tone_matrix
from repro.core.engine import ResidualEngine
from repro.core.offsets import refine_offsets

N_SAMPLES = 128
N_WINDOWS = 7


def _collision(rng: np.random.Generator, n_users: int):
    """Synthetic preamble windows with ``n_users`` well-separated tones."""
    positions = np.sort(rng.uniform(5.0, N_SAMPLES - 8.0, n_users))
    while n_users > 1 and float(np.min(np.diff(positions))) < 2.0:
        positions = np.sort(rng.uniform(5.0, N_SAMPLES - 8.0, n_users))
    channels = rng.normal(size=(N_WINDOWS, n_users)) + 1j * rng.normal(
        size=(N_WINDOWS, n_users)
    )
    windows = (tone_matrix(positions, N_SAMPLES) @ channels.T).T
    windows = windows + 0.1 * (
        rng.normal(size=(N_WINDOWS, N_SAMPLES))
        + 1j * rng.normal(size=(N_WINDOWS, N_SAMPLES))
    )
    coarse = positions + rng.uniform(-0.2, 0.2, n_users)
    return windows, coarse


def _timed(fun, reps: int = 10) -> float:
    """Best-effort per-call seconds over ``reps`` repetitions."""
    fun()  # warm caches outside the timed region
    start = time.perf_counter()
    for _ in range(reps):
        fun()
    return (time.perf_counter() - start) / reps


@pytest.mark.parametrize("n_users", [2, 3, 4])
def test_bench_refine_engine_speedup(benchmark, n_users):
    """Engine refinement must be >=5x the scalar loop for K>=2 users."""
    rng = np.random.default_rng(7)
    windows, coarse = _collision(rng, n_users)
    engine = ResidualEngine(windows)

    scalar_s = _timed(
        lambda: refine_offsets(windows, coarse, method="coordinate-scalar")
    )
    engine_s = _timed(lambda: engine.refine(coarse))
    speedup = scalar_s / max(engine_s, 1e-12)
    benchmark.extra_info["scalar_ms"] = scalar_s * 1e3
    benchmark.extra_info["engine_ms"] = engine_s * 1e3
    benchmark.extra_info["speedup"] = speedup

    refined_scalar = refine_offsets(windows, coarse, method="coordinate-scalar")
    refined_engine = benchmark(lambda: engine.refine(coarse))
    np.testing.assert_allclose(refined_engine, refined_scalar, atol=5e-3)
    perf_gate(
        speedup >= 5.0,
        f"K={n_users}: engine {engine_s * 1e3:.2f}ms vs scalar "
        f"{scalar_s * 1e3:.2f}ms = {speedup:.1f}x (< 5x floor)",
    )


def test_bench_refine_single_user(benchmark):
    """K=1 has no Schur block to amortize but must not regress vs scalar."""
    rng = np.random.default_rng(11)
    windows, coarse = _collision(rng, 1)
    engine = ResidualEngine(windows)

    scalar_s = _timed(
        lambda: refine_offsets(windows, coarse, method="coordinate-scalar")
    )
    engine_s = _timed(lambda: engine.refine(coarse))
    benchmark.extra_info["speedup"] = scalar_s / max(engine_s, 1e-12)
    benchmark(lambda: engine.refine(coarse))
    perf_gate(engine_s <= scalar_s, "engine slower than scalar for K=1")
