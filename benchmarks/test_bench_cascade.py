"""Speedup and parity gates for the tiered decode cascade.

Re-runs the committed ``BENCH_cascade.json`` configuration -- the
single-user-dominated mixed workload (clean windows plus a 2-4-user
collided tail) -- and gates the cascade's admission ticket:

* **speedup**: total decode time under ``"cascade"`` must stay at least
  3x faster than ``"full"`` (wall-clock, so CI=1 softens it to a loud
  warning via :func:`benchmarks.perf.perf_gate`);
* **parity** (correctness, never softened): the cascade recovers every
  payload the full path recovers, on the bench workload and fresh
  reruns alike;
* **escalation**: collided windows do escalate (the discriminator is
  alive, not classifying everything clean), and clean windows mostly
  stay on Tier 0.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib

from benchmarks.perf import perf_gate

ROOT = pathlib.Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "bench_cascade", ROOT / "tools" / "bench_cascade.py"
)
assert _spec is not None and _spec.loader is not None
bench_cascade = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_cascade)


def test_cascade_speedup_and_parity_vs_committed_baseline():
    baseline = json.loads((ROOT / "BENCH_cascade.json").read_text())
    result = bench_cascade.run_benchmark(**baseline["config"])

    cascade = result["tiers"]["cascade"]
    full = result["tiers"]["full"]
    print(
        f"\ncascade speedup {result['speedup']:.2f}x"
        f" (baseline {baseline['speedup']:.2f}x),"
        f" escalation rate {cascade['escalation_rate']:.0%},"
        f" tier0 p50 {cascade['tier0_latency_s']['p50_s'] * 1e3:.2f}ms"
        f" vs full p50 {full['latency_s']['p50_s'] * 1e3:.2f}ms"
    )

    # Wall-clock gate: the ISSUE's >= 3x criterion (report-only on CI).
    perf_gate(
        result["speedup"] >= 3.0,
        f"cascade speedup {result['speedup']:.2f}x fell below the 3x floor",
    )

    # Correctness gates -- never softened.  The cascade must not lose a
    # packet the full path recovers, here or in the committed baseline.
    assert result["parity"]["recovered_by_full_only"] == 0
    assert baseline["parity"]["recovered_by_full_only"] == 0
    assert cascade["recovered"] >= full["recovered"]

    # The decode outcomes are deterministic per config, so the counts
    # must reproduce the committed baseline exactly (latencies may not).
    base_cascade = baseline["tiers"]["cascade"]
    assert cascade["recovered"] == base_cascade["recovered"]
    assert cascade["escalated"] == base_cascade["escalated"]
    assert cascade["escalation_reasons"] == base_cascade["escalation_reasons"]

    # The discriminator is alive: every collided window escalated, and
    # escalations stay a minority on this single-user-dominated mix.
    n_collided = result["workload"]["n_collided"]
    assert cascade["escalated"] >= n_collided
    assert cascade["escalation_rate"] <= 0.5


def test_cascade_report_shape_matches_gate_expectations():
    """The committed report carries every field the CI gate flattens."""
    baseline = json.loads((ROOT / "BENCH_cascade.json").read_text())
    assert baseline["benchmark"] == "cascade"
    assert baseline["speedup"] >= 3.0
    for tier in ("full", "cascade"):
        for key in ("p50_s", "p95_s", "p99_s", "mean_s", "max_s"):
            assert key in baseline["tiers"][tier]["latency_s"]
    cascade = baseline["tiers"]["cascade"]
    for field in (
        "tier0_ok",
        "escalated",
        "escalation_rate",
        "escalation_reasons",
        "tier0_latency_s",
        "full_latency_s",
    ):
        assert field in cascade
    assert cascade["realtime_factor"] > baseline["tiers"]["full"]["realtime_factor"]
