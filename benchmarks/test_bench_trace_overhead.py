"""Tracing-off overhead gate for the streaming gateway.

The provenance-tracing hooks sit on the decode hot path (ambient
ContextVar reads in ``align_to_window_grid``, ``phased_sic``, the
decoder's conflict loop).  With tracing disabled every hook must reduce
to a no-op cheap enough that the standard gateway benchmark stays within
10% of the committed ``BENCH_gateway.json`` realtime factor -- the
subsystem's admission ticket.  The baseline is now the 8-channel EU868
mixed-SF sharded run (the deployment-shaped configuration CI exercises);
its wideband channelization stage makes wall clock jitter roughly +-10%
run to run on a shared machine, so the old single-channel 2% band would
trip on scheduler luck alone.

The traced run is also measured and reported (no gate: full-rate tracing
is allowed to cost something; it just has to be visible).
"""

from __future__ import annotations

import importlib.util
import json
import pathlib

from benchmarks.perf import perf_gate

ROOT = pathlib.Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "bench_report", ROOT / "tools" / "bench_report.py"
)
assert _spec is not None and _spec.loader is not None
bench_report = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_report)


def test_tracing_off_overhead_within_ten_percent(tmp_path):
    baseline = json.loads((ROOT / "BENCH_gateway.json").read_text())
    base_rt = baseline["throughput"]["realtime_factor"]

    # Tracing off (the default): the committed config, rerun fresh.
    # Best-of-3 filters scheduler noise: a wall-clock sample jitters on
    # a shared machine, and the gate asks whether the *code* got slower,
    # not whether one run was unlucky.
    candidates = [bench_report.rerun_from(baseline) for _ in range(3)]
    candidate = max(
        candidates, key=lambda r: r["throughput"]["realtime_factor"]
    )
    off_rt = candidate["throughput"]["realtime_factor"]

    # Tracing on at full rate, for the report only.
    traced = bench_report.run_benchmark(
        **baseline["config"], trace_out=str(tmp_path / "trace.jsonl")
    )
    on_rt = traced["throughput"]["realtime_factor"]

    print(
        f"\nrealtime factor: baseline {base_rt:.3f}x,"
        f" tracing-off {off_rt:.3f}x, tracing-on {on_rt:.3f}x"
        f" (off/baseline = {off_rt / base_rt:.4f})"
    )
    perf_gate(
        off_rt >= 0.90 * base_rt,
        f"tracing-off realtime factor {off_rt:.3f}x fell more than 10% below"
        f" the committed baseline {base_rt:.3f}x",
    )
    # Sanity: both runs decode the same traffic.
    assert candidate["counts"]["recovered"] == baseline["counts"]["recovered"]
    assert traced["counts"]["recovered"] == baseline["counts"]["recovered"]
