"""Dechirp micro-benchmarks: the cached base reference vs rebuilding it.

``dechirp_windows`` runs in every detection scan and every decode window,
so the base downchirp it multiplies by is the hottest constant in the
receiver.  These benchmarks quantify what :func:`repro.core.dechirp.cached_downchirp`
saves: the cache-hit path skips the per-call chirp synthesis (an exp over
``n * oversampling`` points) and hands back the same read-only array.
"""

import numpy as np
import pytest
from benchmarks.perf import perf_gate

from repro.core.dechirp import _downchirp_for, cached_downchirp, dechirp_windows
from repro.phy import LoRaParams

PARAMS = LoRaParams(spreading_factor=8, preamble_len=8)


def _fresh_downchirp(params: LoRaParams) -> np.ndarray:
    """The uncached work: synthesize the base downchirp from scratch."""
    from repro.phy.chirp import downchirp

    return downchirp(params)


def test_bench_downchirp_uncached(benchmark):
    result = benchmark(_fresh_downchirp, PARAMS)
    assert result.size == PARAMS.samples_per_symbol


def test_bench_downchirp_cached(benchmark):
    cached_downchirp(PARAMS)  # warm the cache outside the timed region
    result = benchmark(cached_downchirp, PARAMS)
    assert result.size == PARAMS.samples_per_symbol


def test_bench_dechirp_windows_stream(benchmark):
    """End-to-end dechirp cost over a detection-scan-sized capture."""
    rng = np.random.default_rng(0)
    n = PARAMS.samples_per_symbol
    capture = rng.standard_normal(64 * n) + 1j * rng.standard_normal(64 * n)
    windows = benchmark(dechirp_windows, PARAMS, capture)
    assert windows.shape == (64, n)


def test_cached_downchirp_is_cached_and_correct():
    """The cache returns one identical read-only array per parameter key."""
    a = cached_downchirp(PARAMS)
    b = cached_downchirp(LoRaParams(spreading_factor=8, preamble_len=8))
    assert a is b  # same key -> same object, no rebuild
    assert not a.flags.writeable
    np.testing.assert_allclose(a, _fresh_downchirp(PARAMS))
    other = cached_downchirp(LoRaParams(spreading_factor=7))
    assert other is not a
    assert other.size == 128
    info = _downchirp_for.cache_info()
    assert info.hits >= 1


def test_cached_downchirp_speedup(benchmark):
    """The cache must beat synthesis by a wide margin (the satellite's claim)."""
    import time

    cached_downchirp(PARAMS)
    reps = 200
    t0 = time.perf_counter()
    for _ in range(reps):
        _fresh_downchirp(PARAMS)
    fresh = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(reps):
        cached_downchirp(PARAMS)
    hit = time.perf_counter() - t0
    benchmark.extra_info["speedup"] = fresh / max(hit, 1e-12)
    benchmark(cached_downchirp, PARAMS)
    perf_gate(
        fresh > 2.0 * hit,
        f"cache hit ({hit:.6f}s) not faster than rebuild ({fresh:.6f}s)",
    )
