"""Fig. 12 bench: Choir vs uplink MU-MIMO on a 3-antenna base station."""

from benchmarks.conftest import emit
from repro.experiments import run_mimo_comparison


def test_bench_fig12_mimo(benchmark):
    result = benchmark(run_mimo_comparison, duration_s=20.0)
    emit(result)
    rows = {r["system"]: r["throughput_bps"] for r in result.rows}
    # Paper ordering: ALOHA < Oracle < MU-MIMO < Choir(1 ant) <= Choir+MIMO.
    assert rows["aloha"] < rows["oracle"] < rows["mu_mimo"] < rows["choir_1ant"]
    assert rows["choir_mimo"] >= rows["choir_1ant"] * 0.98
