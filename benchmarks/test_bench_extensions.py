"""Benches for the paper's extension points (Sec. 5.2 notes 2 and 4)."""

from benchmarks.conftest import emit
from repro.experiments.extensions import run_multisf_demux, run_unb_separation


def test_bench_multisf_demux(benchmark):
    result = benchmark(run_multisf_demux)
    emit(result)
    for row in result.rows:
        assert row["found_users"] == row["expected_users"]
        assert row["mean_accuracy"] is None or row["mean_accuracy"] > 0.4
    on = [r["mean_accuracy"] for r in result.rows if r["cancellation"] == "on"]
    off = [r["mean_accuracy"] for r in result.rows if r["cancellation"] == "off"]
    assert sum(on) >= sum(off) - 0.1  # cancellation helps (or ties)


def test_bench_unb_separation(benchmark):
    result = benchmark(run_unb_separation)
    emit(result)
    equal_power = [r for r in result.rows if "equal-power" in r["scenario"]]
    for row in equal_power:
        assert row["found_users"] == int(row["scenario"].split()[0])
        assert row["mean_bit_accuracy"] > 0.85
    near_far = next(r for r in result.rows if r["scenario"] == "near-far 26 dB")
    assert near_far["mean_bit_accuracy"] == 1.0
