"""Ablation benches for the design choices DESIGN.md calls out."""

from benchmarks.conftest import emit
from repro.experiments.ablations import (
    ablation_fft_oversampling,
    ablation_fine_vs_coarse,
    ablation_preamble_accumulation,
    ablation_sic_strategies,
    ablation_splicing,
)


def test_ablation_fine_vs_coarse(benchmark):
    result = benchmark(ablation_fine_vs_coarse, 4)
    emit(result)
    by_mode = {r["mode"]: r["mean_symbol_accuracy"] for r in result.rows}
    assert by_mode["fine (refined)"] > by_mode["coarse only"] + 0.2


def test_ablation_sic_strategies(benchmark):
    result = benchmark(ablation_sic_strategies, 4)
    emit(result)
    by_mode = {r["strategy"]: r["weak_user_found"] for r in result.rows}
    phased = int(by_mode["phased (multi-tier)"].split("/")[0])
    single = int(by_mode["single tier"].split("/")[0])
    assert phased >= single


def test_ablation_fft_oversampling(benchmark):
    result = benchmark(ablation_fft_oversampling)
    emit(result)
    errors = {r["oversample"]: r["mean_coarse_error_bins"] for r in result.rows}
    assert errors[10] < errors[1]


def test_ablation_preamble_accumulation(benchmark):
    result = benchmark(ablation_preamble_accumulation)
    emit(result)
    rates = result.column("detection_rate")
    assert rates[-1] > rates[0]


def test_ablation_splicing(benchmark):
    result = benchmark(ablation_splicing)
    emit(result)
    rows = {r["mode"]: r for r in result.rows}
    assert rows["MSB chunk (spliced)"]["team_can_pool"]
    assert not rows["whole reading (no splicing)"]["team_can_pool"]
