"""Fig. 8 bench: throughput / latency / transmissions across SNR and users."""

from benchmarks.conftest import emit
from repro.experiments import run_density_vs_snr, run_density_vs_users
from repro.experiments.fig8_density import summarize_gains


def test_bench_fig8ac_density_vs_snr(benchmark):
    result = benchmark(run_density_vs_snr, duration_s=20.0)
    emit(result)
    for regime in ("low", "medium", "high"):
        rows = {r["system"]: r for r in result.rows if r["snr_regime"] == regime}
        assert rows["choir"]["throughput_bps"] > rows["oracle"]["throughput_bps"]


def test_bench_fig8df_density_vs_users(benchmark):
    result = benchmark(run_density_vs_users, duration_s=20.0)
    emit(result)
    gains = summarize_gains(result, n_users=10)
    print(
        "\nheadline gains at 10 users (paper: 6.84x Oracle / 29.02x ALOHA "
        "throughput, 4.88x/19.37x latency, 4.54x transmissions):"
    )
    for key, value in gains.items():
        print(f"  {key}: {value:.2f}x")
    assert gains["throughput_vs_oracle"] > 4.0
    assert gains["throughput_vs_aloha"] > 10.0
