#!/usr/bin/env python
"""Runnable wrapper for the repro-lint static-analysis engine.

Usage::

    python tools/repro_lint.py [paths...]                # default: src
    python tools/repro_lint.py --engine=ast src tools
    python tools/repro_lint.py --json findings.json src
    python tools/repro_lint.py --list-rules

The implementation lives in :mod:`repro.tools.analysis` so it ships with
the package (console script ``repro-lint``); this wrapper only makes it
runnable from a source checkout without installation.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.tools.lint import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
