"""Decode-latency benchmark: time ChoirDecoder vs user count and SF.

Renders deterministic synthetic collisions (random offsets/delays per
user, fixed seed) and times the full per-packet decode -- preamble SIC,
delay estimation, data demodulation -- on the engine path, recording the
latency percentiles a deployer sizes workers with.  Writes
``BENCH_decode.json``; ``tools/bench_report.py --compare`` gates CI
against the committed baseline.

Usage::

    PYTHONPATH=src python tools/bench_decode.py                  # defaults
    PYTHONPATH=src python tools/bench_decode.py --reps 10 \
        --sfs 7,8 --users 1,2,3,4 --out BENCH_decode.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.channel import CollisionChannel  # noqa: E402
from repro.core.decoder import ChoirDecoder  # noqa: E402
from repro.hardware import LoRaRadio, OscillatorModel, TimingModel  # noqa: E402
from repro.phy.params import LoRaParams  # noqa: E402
from repro.utils import ensure_rng  # noqa: E402

#: Latency summary statistics exported per case.
PERCENTILES = ("p50_s", "p95_s", "p99_s", "mean_s", "max_s")


def _render_collision(
    params: LoRaParams,
    n_users: int,
    n_symbols: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """One synthetic collision capture with ``n_users`` random transmitters."""
    channel = CollisionChannel(params, noise_power=1.0)
    transmissions = []
    for node_id in range(n_users):
        cfo_bins = rng.uniform(2.0, params.chips_per_symbol - 4.0)
        delay_samples = rng.uniform(0.0, 8.0)
        amplitude = float(10.0 ** (rng.uniform(10.0, 20.0) / 20.0))
        radio = LoRaRadio(
            params,
            oscillator=OscillatorModel(params.bins_to_hz(cfo_bins)),
            timing=TimingModel(delay_samples / params.sample_rate),
            node_id=node_id,
            rng=rng,
        )
        symbols = rng.integers(0, params.chips_per_symbol, n_symbols)
        transmissions.append((radio, symbols, amplitude + 0j))
    packet = channel.receive(transmissions, rng=rng)
    return packet.samples


def _summary(latencies_s: list[float]) -> dict:
    """Percentile summary of one case's per-packet decode latencies."""
    arr = np.asarray(latencies_s)
    return {
        "p50_s": float(np.percentile(arr, 50)),
        "p95_s": float(np.percentile(arr, 95)),
        "p99_s": float(np.percentile(arr, 99)),
        "mean_s": float(np.mean(arr)),
        "max_s": float(np.max(arr)),
    }


def run_benchmark(
    spreading_factors: tuple[int, ...] = (7, 8),
    user_counts: tuple[int, ...] = (1, 2, 3, 4),
    reps: int = 8,
    n_symbols: int = 12,
    seed: int = 0,
    use_engine: bool = True,
    inner: int = 3,
) -> dict:
    """Time per-packet decode across (SF, user count) and return the report.

    Each packet is decoded ``inner`` times and the minimum kept: decode is
    deterministic per capture, so the min strips scheduler noise while the
    percentiles across packets still reflect genuine workload variance.
    """
    cases = []
    for sf in spreading_factors:
        params = LoRaParams(spreading_factor=sf)
        for n_users in user_counts:
            rng = ensure_rng(seed)
            decoder = ChoirDecoder(params, use_engine=use_engine, rng=rng)
            latencies = []
            users_found = []
            for rep in range(reps + 1):
                samples = _render_collision(params, n_users, n_symbols, rng)
                elapsed = np.inf
                for _ in range(inner):
                    started = time.perf_counter()
                    decoded = decoder.decode(samples, n_symbols)
                    elapsed = min(elapsed, time.perf_counter() - started)
                if rep == 0:
                    continue  # warm-up: tone-column/phasor caches fill here
                latencies.append(elapsed)
                users_found.append(len(decoded))
            cases.append(
                {
                    "spreading_factor": sf,
                    "n_users": n_users,
                    "reps": reps,
                    "latency_s": _summary(latencies),
                    "mean_users_found": float(np.mean(users_found)),
                }
            )
    return {
        "benchmark": "decode",
        "config": {
            "spreading_factors": list(spreading_factors),
            "user_counts": list(user_counts),
            "reps": reps,
            "n_symbols": n_symbols,
            "seed": seed,
            "use_engine": use_engine,
            "inner": inner,
        },
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "cases": cases,
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sfs", default="7,8", help="comma-separated SFs")
    parser.add_argument(
        "--users", default="1,2,3,4", help="comma-separated user counts"
    )
    parser.add_argument("--reps", type=int, default=8)
    parser.add_argument("--symbols", type=int, default=12)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--scalar",
        action="store_true",
        help="time the scalar reference path instead of the engine",
    )
    parser.add_argument("--out", default="BENCH_decode.json")
    args = parser.parse_args(argv)
    result = run_benchmark(
        spreading_factors=tuple(int(s) for s in args.sfs.split(",")),
        user_counts=tuple(int(u) for u in args.users.split(",")),
        reps=args.reps,
        n_symbols=args.symbols,
        seed=args.seed,
        use_engine=not args.scalar,
    )
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    for case in result["cases"]:
        latency = case["latency_s"]
        print(
            f"SF{case['spreading_factor']} K={case['n_users']}:"
            f" p50 {latency['p50_s'] * 1e3:.1f}ms"
            f" p95 {latency['p95_s'] * 1e3:.1f}ms"
            f" (found {case['mean_users_found']:.1f} users)"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
