"""Capacity-campaign benchmark: run the sweep, write BENCH_capacity.json.

Runs the committed scenario's node-count sweep (scaled for CI) through
both decoder variants and records, per sweep point, the two numbers the
capacity gate cares about -- each framed lower-is-better so the shared
``bench_report.py --compare`` machinery (which only fails on *increases*)
gates them directly:

* ``choir_loss_rate`` -- ``1 - delivery_rate`` of the Choir cascade.  A
  decode regression shows up as packets lost, and the comparator flags
  the rise; a deterministic seed makes the rerun value exact.
* ``wall_per_stream_s`` -- wall seconds burned per simulated stream
  second (the reciprocal of the realtime factor, summed over both
  variants).  A throughput regression makes the sweep slower per unit of
  air time.

The report also stores each point's raw delivery rates and the ordering
margin for humans; the comparator ignores those.

Usage::

    PYTHONPATH=src python tools/bench_capacity.py                 # defaults
    PYTHONPATH=src python tools/bench_capacity.py --nodes 50 200 800 \
        --duration 10 --out BENCH_capacity.json
    PYTHONPATH=src python tools/bench_report.py --compare BENCH_capacity.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.scenario import load_scenario, run_campaign  # noqa: E402

DEFAULT_SCENARIO = "scenarios/eu868_urban.yaml"
DEFAULT_NODE_COUNTS = (50, 200, 800)
DEFAULT_DURATION_S = 10.0


def run_benchmark(
    scenario: str = DEFAULT_SCENARIO,
    node_counts: tuple[int, ...] | list[int] = DEFAULT_NODE_COUNTS,
    duration_s: float = DEFAULT_DURATION_S,
    seed: int = 0,
    strict_above: int = 200,
) -> dict:
    """Run one scaled capacity campaign and return the JSON-ready dict.

    The scenario path is stored relative to the repo root inside
    ``config`` so ``--compare`` reruns resolve it from any CWD.
    """
    scenario_path = Path(scenario)
    if not scenario_path.is_file():
        scenario_path = Path(__file__).resolve().parent.parent / scenario
    spec = load_scenario(scenario_path)
    curve = run_campaign(
        spec, node_counts=list(node_counts), duration_s=duration_s, seed=seed
    )
    points = []
    for p in curve.points:
        wall = p.choir.wall_s + p.baseline.wall_s
        points.append(
            {
                "n_nodes": p.n_nodes,
                "offered_load_erlangs": p.offered_load_erlangs,
                "choir_loss_rate": 1.0 - p.choir.delivery_rate,
                "wall_per_stream_s": wall / p.duration_s,
                "choir_delivery_rate": p.choir.delivery_rate,
                "baseline_delivery_rate": p.baseline.delivery_rate,
                "capacity_gain": (
                    p.capacity_gain if p.capacity_gain != float("inf") else None
                ),
                "packets_offered": p.choir.packets_offered,
                "source_active_peak": p.source_active_peak,
            }
        )
    return {
        "benchmark": "capacity",
        "config": {
            "scenario": scenario,
            "node_counts": list(node_counts),
            "duration_s": duration_s,
            "seed": seed,
            "strict_above": strict_above,
        },
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "scenario_name": spec.name,
        "ordering_violations": curve.ordering_violations(
            strict_above=strict_above
        ),
        "points": points,
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default=DEFAULT_SCENARIO)
    parser.add_argument(
        "--nodes", type=int, nargs="+", default=list(DEFAULT_NODE_COUNTS)
    )
    parser.add_argument("--duration", type=float, default=DEFAULT_DURATION_S)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--strict-above", type=int, default=200)
    parser.add_argument("--out", default="BENCH_capacity.json")
    args = parser.parse_args(argv)
    result = run_benchmark(
        scenario=args.scenario,
        node_counts=args.nodes,
        duration_s=args.duration,
        seed=args.seed,
        strict_above=args.strict_above,
    )
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    for point in result["points"]:
        print(
            f"  n={point['n_nodes']}: choir {point['choir_delivery_rate']:.3f}"
            f" vs baseline {point['baseline_delivery_rate']:.3f} delivery,"
            f" {point['wall_per_stream_s']:.2f} wall-s per stream-s,"
            f" active peak {point['source_active_peak']}"
        )
    if result["ordering_violations"]:
        print("ORDERING VIOLATIONS:", file=sys.stderr)
        for violation in result["ordering_violations"]:
            print(f"  {violation}", file=sys.stderr)
        return 1
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
