"""Gateway throughput benchmark: run the streaming runtime, write BENCH_gateway.json.

Runs the full ingest -> detect -> dispatch -> decode pipeline over
deterministic synthetic traffic and records the numbers a deployer sizes
hardware with: packets/s and samples/s of sustained throughput, the
realtime factor, and per-stage latency percentiles straight from the
telemetry layer.

Also hosts the regression gate shared with ``tools/bench_decode.py``,
``tools/bench_cascade.py`` and ``tools/bench_capacity.py``:
``--compare baseline.json`` re-runs the benchmark named inside the
baseline (or reads ``--candidate``) and fails if any gated metric
exceeds the baseline by more than ``--tolerance`` (default 25%).

Usage::

    PYTHONPATH=src python tools/bench_report.py                  # defaults
    PYTHONPATH=src python tools/bench_report.py --duration 10 \
        --workers 4 --out BENCH_gateway.json
    PYTHONPATH=src python tools/bench_report.py \
        --compare BENCH_decode.json --tolerance 0.25
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.gateway import (  # noqa: E402
    Gateway,
    GatewayConfig,
    ShardedGateway,
    ShardedGatewayConfig,
    SyntheticTrafficSource,
)
from repro.mac.simulator import NodeConfig  # noqa: E402
from repro.phy.params import ChannelPlan, LoRaParams  # noqa: E402

#: Telemetry histograms exported per stage.
STAGE_METRICS = (
    "ingest.chunk_s",
    "channelize.push_s",
    "detect.scan_s",
    "decode.queue_wait_s",
    "decode.decode_s",
)


def run_benchmark(
    duration_s: float = 5.0,
    n_nodes: int = 2,
    period_s: float = 0.5,
    snr_db: float = 15.0,
    payload_len: int = 4,
    n_workers: int = 2,
    executor: str = "thread",
    seed: int = 0,
    spreading_factor: int = 7,
    n_channels: int = 1,
    sf_set: tuple[int, ...] | list[int] | None = None,
    telemetry_out: str | None = None,
    metrics_out: str | None = None,
    trace_out: str | None = None,
    profile: bool = False,
    profile_out: str | None = None,
    stacks_out: str | None = None,
) -> dict:
    """Run one gateway benchmark and return the JSON-ready result dict.

    ``n_channels > 1`` (or a multi-SF ``sf_set``) benchmarks the sharded
    multi-channel gateway over wideband synthetic traffic instead of the
    single-channel runtime; ``telemetry_out`` additionally dumps the run's
    telemetry registry as JSON-lines (the CI artifact), ``metrics_out``
    writes Prometheus text exposition, and ``trace_out`` enables
    provenance tracing and writes the trace there.  ``profile`` (or
    either profile output path) turns on the kernel profiler;
    ``profile_out`` writes the diffable run manifest and ``stacks_out``
    the collapsed kernel stacks.  The output paths are deliberately not
    part of the recorded ``config``, so ``--compare`` reruns stay
    untraced and unprofiled (both cost a little and baselines must stay
    comparable).
    """
    sfs = tuple(sf_set) if sf_set else (spreading_factor,)
    params = LoRaParams(spreading_factor=sfs[0])
    profiling = bool(profile or profile_out or stacks_out)
    sharded = n_channels > 1 or len(sfs) > 1
    gateway: Gateway | ShardedGateway
    if sharded:
        plan = ChannelPlan.eu868_style(n_channels)
        nodes = [
            NodeConfig(
                node_id=i,
                snr_db=snr_db,
                period_s=period_s,
                channel=i % plan.n_channels,
                spreading_factor=sfs[i % len(sfs)],
            )
            for i in range(n_nodes)
        ]
        source = SyntheticTrafficSource(
            params,
            nodes,
            duration_s=duration_s,
            payload_len=payload_len,
            plan=plan,
            rng=seed,
        )
        gateway = ShardedGateway(
            ShardedGatewayConfig(
                plan=plan,
                sf_set=sfs,
                payload_len=payload_len,
                n_workers=n_workers,
                executor=executor,
                seed=seed,
                trace=bool(trace_out),
                profile=profiling,
            )
        )
    else:
        nodes = [
            NodeConfig(node_id=i, snr_db=snr_db, period_s=period_s)
            for i in range(n_nodes)
        ]
        source = SyntheticTrafficSource(
            params, nodes, duration_s=duration_s, payload_len=payload_len, rng=seed
        )
        gateway = Gateway(
            GatewayConfig(
                params=params,
                payload_len=payload_len,
                n_workers=n_workers,
                executor=executor,
                seed=seed,
                trace=bool(trace_out),
                profile=profiling,
            )
        )
    report = gateway.run(source)
    if telemetry_out:
        gateway.telemetry.write_jsonl(telemetry_out)
    if metrics_out:
        gateway.telemetry.write_prometheus(metrics_out)
    if trace_out and report.trace is not None:
        from repro.trace import write_trace

        write_trace(report.trace, trace_out)
    sent = sorted(p.payload for p in source.transmitted)
    got = sorted(report.decoded_payloads)
    recovered = sum(1 for p in got if p in sent)
    stages = {}
    for metric in STAGE_METRICS:
        state = report.telemetry.get(metric)
        if state is None:
            continue
        stages[metric] = {
            key: state[key]
            for key in ("count", "p50_s", "p95_s", "p99_s", "mean_s", "max_s")
            if key in state
        }
    result = {
        "benchmark": "gateway",
        "config": {
            "duration_s": duration_s,
            "n_nodes": n_nodes,
            "period_s": period_s,
            "snr_db": snr_db,
            "payload_len": payload_len,
            "n_workers": n_workers,
            "executor": executor,
            "seed": seed,
            "spreading_factor": spreading_factor,
            "n_channels": n_channels,
            "sf_set": list(sfs),
        },
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "throughput": {
            "packets_per_s": report.packets_per_s,
            "samples_per_s": report.samples_per_s,
            "realtime_factor": report.realtime_factor,
            "wall_s": report.wall_s,
            "stream_s": report.stream_s,
        },
        "counts": {
            "transmitted": len(sent),
            "detected": report.packets_detected,
            "decoded": report.packets_decoded,
            "recovered": recovered,
            "dropped": report.packets_dropped,
            "crc_failures": report.crc_failures,
        },
        "stages": stages,
    }
    if report.shards is not None:
        result["shards"] = report.shards
    if profile_out:
        from repro.profile import build_manifest
        from repro.scenario.build import report_digest

        manifest = build_manifest(
            "bench-gateway",
            result["config"],
            seed=seed,
            digest=report_digest(report),
            telemetry=gateway.telemetry,
            profiler=report.profile,
            resources=report.resources,
            extra_metrics={
                "gateway.realtime_factor": report.realtime_factor,
                "gateway.wall_s": report.wall_s,
                "gateway.packets_decoded": float(report.packets_decoded),
            },
        )
        manifest.write(profile_out)
    if stacks_out and report.profile is not None:
        Path(stacks_out).write_text(report.profile.collapsed())
    return result


#: Percentiles gated by ``--compare`` (means/maxima are too noisy to gate).
COMPARE_KEYS = ("p50_s", "p95_s")


def latency_metrics(report: dict) -> dict[str, float]:
    """Flatten a benchmark report into comparable ``{label: seconds}`` pairs."""
    metrics: dict[str, float] = {}
    if report.get("benchmark") == "decode":
        for case in report.get("cases", ()):
            label = f"sf{case['spreading_factor']}.k{case['n_users']}"
            for key in COMPARE_KEYS:
                metrics[f"{label}.{key}"] = float(case["latency_s"][key])
    elif report.get("benchmark") == "cascade":
        for tier, entry in report.get("tiers", {}).items():
            for key in COMPARE_KEYS:
                metrics[f"{tier}.{key}"] = float(entry["latency_s"][key])
            for sub in ("tier0", "full"):
                hist = entry.get(f"{sub}_latency_s")
                if hist is not None:
                    for key in COMPARE_KEYS:
                        metrics[f"{tier}.{sub}.{key}"] = float(hist[key])
    elif report.get("benchmark") == "capacity":
        # Both metrics are lower-is-better by construction (loss rather
        # than delivery, wall-per-stream rather than realtime factor), so
        # the increase-only comparator gates capacity and throughput
        # regressions alike.  loss_rate is a fraction, not seconds; the
        # comparator's ms formatting is cosmetic.
        for point in report.get("points", ()):
            label = f"n{point['n_nodes']}"
            metrics[f"{label}.loss_rate"] = float(point["choir_loss_rate"])
            metrics[f"{label}.wall_per_stream_s"] = float(
                point["wall_per_stream_s"]
            )
    else:
        for stage, hist in report.get("stages", {}).items():
            for key in COMPARE_KEYS:
                if key in hist:
                    metrics[f"{stage}.{key}"] = float(hist[key])
    return metrics


def rerun_from(baseline: dict) -> dict:
    """Re-run the benchmark a baseline report was produced by, same config."""
    config = dict(baseline.get("config", {}))
    if baseline.get("benchmark") == "decode":
        sys.path.insert(0, str(Path(__file__).resolve().parent))
        import bench_decode

        return bench_decode.run_benchmark(**config)
    if baseline.get("benchmark") == "cascade":
        sys.path.insert(0, str(Path(__file__).resolve().parent))
        import bench_cascade

        return bench_cascade.run_benchmark(**config)
    if baseline.get("benchmark") == "capacity":
        sys.path.insert(0, str(Path(__file__).resolve().parent))
        import bench_capacity

        return bench_capacity.run_benchmark(**config)
    return run_benchmark(**config)


def compare_reports(
    baseline: dict,
    candidate: dict,
    tolerance: float = 0.25,
    slack_s: float = 0.002,
) -> list[str]:
    """Return the metrics where ``candidate`` regressed past the tolerance.

    Only slowdowns fail: a candidate faster than baseline is reported but
    never treated as a regression.  ``slack_s`` is an absolute grace on top
    of the relative limit so sub-10ms metrics, dominated by fixed overhead
    and scheduler jitter, do not flap the gate.

    A thin shell over :func:`repro.profile.diff.diff_metrics` with a
    forced lower-is-better direction (every gated metric is a latency or
    a loss); the line format is the historical one, byte for byte.
    """
    from repro.profile.diff import diff_metrics, format_compare_line

    report = diff_metrics(
        latency_metrics(baseline),
        latency_metrics(candidate),
        tolerance=tolerance,
        slack=slack_s,
        direction=lambda name: "lower",
    )
    regressions = []
    for delta in report.deltas:
        if delta.verdict == "new-key":  # historical output ignored these
            continue
        print(format_compare_line(delta))
        if delta.verdict in ("slower", "missing-key"):
            regressions.append(delta.name)
    return regressions


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument("--nodes", type=int, default=2)
    parser.add_argument("--period", type=float, default=0.5)
    parser.add_argument("--snr", type=float, default=15.0)
    parser.add_argument("--payload-len", type=int, default=4)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--executor", choices=("serial", "thread", "process"), default="thread"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sf", type=int, default=7)
    parser.add_argument(
        "--channels",
        type=int,
        default=1,
        help=">1 benchmarks the sharded multi-channel gateway",
    )
    parser.add_argument(
        "--sf-set",
        default=None,
        help="comma list of SFs scanned per channel (e.g. 7,8); implies sharding",
    )
    parser.add_argument(
        "--telemetry-out",
        default=None,
        help="also dump the run's telemetry registry as JSON-lines here",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="also write Prometheus text exposition here",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="enable provenance tracing and write the trace here"
        " (.jsonl or .json)",
    )
    parser.add_argument(
        "--profile-out",
        default=None,
        help="enable the kernel profiler and write a diffable run manifest"
        " here (compare runs with `python -m repro diff`)",
    )
    parser.add_argument(
        "--stacks-out",
        default=None,
        help="enable the kernel profiler and write collapsed stacks here",
    )
    parser.add_argument("--out", default="BENCH_gateway.json")
    parser.add_argument(
        "--compare",
        metavar="BASELINE",
        help="regression mode: check a fresh run (or --candidate) against"
        " this baseline JSON instead of writing a report",
    )
    parser.add_argument(
        "--candidate",
        metavar="CANDIDATE",
        help="with --compare: compare this report instead of re-running",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="with --compare: allowed fractional latency slowdown (0.25 = 25%%)",
    )
    parser.add_argument(
        "--slack",
        type=float,
        default=0.002,
        help="with --compare: absolute grace in seconds on top of the"
        " relative limit (jitter floor for sub-10ms metrics)",
    )
    args = parser.parse_args(argv)
    if args.compare:
        baseline = json.loads(Path(args.compare).read_text())
        if args.candidate:
            candidate = json.loads(Path(args.candidate).read_text())
        else:
            print(f"re-running '{baseline.get('benchmark')}' benchmark ...")
            candidate = rerun_from(baseline)
        print(f"comparing against {args.compare} (tolerance {args.tolerance:.0%}):")
        regressions = compare_reports(
            baseline, candidate, args.tolerance, slack_s=args.slack
        )
        if regressions:
            print(f"REGRESSION: {len(regressions)} metric(s) over tolerance")
            return 1
        print("no regressions")
        return 0
    sf_set = (
        tuple(int(part) for part in args.sf_set.split(",") if part.strip())
        if args.sf_set
        else None
    )
    result = run_benchmark(
        duration_s=args.duration,
        n_nodes=args.nodes,
        period_s=args.period,
        snr_db=args.snr,
        payload_len=args.payload_len,
        n_workers=args.workers,
        executor=args.executor,
        seed=args.seed,
        spreading_factor=args.sf,
        n_channels=args.channels,
        sf_set=sf_set,
        telemetry_out=args.telemetry_out,
        metrics_out=args.metrics_out,
        trace_out=args.trace_out,
        profile_out=args.profile_out,
        stacks_out=args.stacks_out,
    )
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    thr = result["throughput"]
    counts = result["counts"]
    print(
        f"gateway bench: {counts['decoded']}/{counts['transmitted']} decoded,"
        f" {thr['packets_per_s']:.2f} packets/s,"
        f" {thr['samples_per_s'] / 1e3:.0f} ksamples/s,"
        f" {thr['realtime_factor']:.2f}x realtime"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
