"""Gateway throughput benchmark: run the streaming runtime, write BENCH_gateway.json.

Runs the full ingest -> detect -> dispatch -> decode pipeline over
deterministic synthetic traffic and records the numbers a deployer sizes
hardware with: packets/s and samples/s of sustained throughput, the
realtime factor, and per-stage latency percentiles straight from the
telemetry layer.

Usage::

    PYTHONPATH=src python tools/bench_report.py                  # defaults
    PYTHONPATH=src python tools/bench_report.py --duration 10 \
        --workers 4 --out BENCH_gateway.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.gateway import Gateway, GatewayConfig, SyntheticTrafficSource  # noqa: E402
from repro.mac.simulator import NodeConfig  # noqa: E402
from repro.phy.params import LoRaParams  # noqa: E402

#: Telemetry histograms exported per stage.
STAGE_METRICS = (
    "ingest.chunk_s",
    "detect.scan_s",
    "decode.queue_wait_s",
    "decode.decode_s",
)


def run_benchmark(
    duration_s: float = 5.0,
    n_nodes: int = 2,
    period_s: float = 0.5,
    snr_db: float = 15.0,
    payload_len: int = 4,
    n_workers: int = 2,
    executor: str = "thread",
    seed: int = 0,
    spreading_factor: int = 7,
) -> dict:
    """Run one gateway benchmark and return the JSON-ready result dict."""
    params = LoRaParams(spreading_factor=spreading_factor)
    nodes = [
        NodeConfig(node_id=i, snr_db=snr_db, period_s=period_s)
        for i in range(n_nodes)
    ]
    source = SyntheticTrafficSource(
        params, nodes, duration_s=duration_s, payload_len=payload_len, rng=seed
    )
    config = GatewayConfig(
        params=params,
        payload_len=payload_len,
        n_workers=n_workers,
        executor=executor,
        seed=seed,
    )
    report = Gateway(config).run(source)
    sent = sorted(p.payload for p in source.transmitted)
    got = sorted(report.decoded_payloads)
    recovered = sum(1 for p in got if p in sent)
    stages = {}
    for metric in STAGE_METRICS:
        state = report.telemetry.get(metric)
        if state is None:
            continue
        stages[metric] = {
            key: state[key]
            for key in ("count", "p50_s", "p95_s", "p99_s", "mean_s", "max_s")
            if key in state
        }
    return {
        "benchmark": "gateway",
        "config": {
            "duration_s": duration_s,
            "n_nodes": n_nodes,
            "period_s": period_s,
            "snr_db": snr_db,
            "payload_len": payload_len,
            "n_workers": n_workers,
            "executor": executor,
            "seed": seed,
            "spreading_factor": spreading_factor,
        },
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "throughput": {
            "packets_per_s": report.packets_per_s,
            "samples_per_s": report.samples_per_s,
            "realtime_factor": report.realtime_factor,
            "wall_s": report.wall_s,
            "stream_s": report.stream_s,
        },
        "counts": {
            "transmitted": len(sent),
            "detected": report.packets_detected,
            "decoded": report.packets_decoded,
            "recovered": recovered,
            "dropped": report.packets_dropped,
            "crc_failures": report.crc_failures,
        },
        "stages": stages,
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument("--nodes", type=int, default=2)
    parser.add_argument("--period", type=float, default=0.5)
    parser.add_argument("--snr", type=float, default=15.0)
    parser.add_argument("--payload-len", type=int, default=4)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--executor", choices=("serial", "thread", "process"), default="thread"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sf", type=int, default=7)
    parser.add_argument("--out", default="BENCH_gateway.json")
    args = parser.parse_args(argv)
    result = run_benchmark(
        duration_s=args.duration,
        n_nodes=args.nodes,
        period_s=args.period,
        snr_db=args.snr,
        payload_len=args.payload_len,
        n_workers=args.workers,
        executor=args.executor,
        seed=args.seed,
        spreading_factor=args.sf,
    )
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    thr = result["throughput"]
    counts = result["counts"]
    print(
        f"gateway bench: {counts['decoded']}/{counts['transmitted']} decoded,"
        f" {thr['packets_per_s']:.2f} packets/s,"
        f" {thr['samples_per_s'] / 1e3:.0f} ksamples/s,"
        f" {thr['realtime_factor']:.2f}x realtime"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
