"""Cascade benchmark: tiered decode vs full Choir on a mixed workload.

Renders a deterministic stream of packet windows the way the streaming
gateway cuts them (two symbols of noise lead, one of tail) -- mostly
single-user clean packets with a configurable fraction of 2-4-user
collisions -- and times :func:`repro.gateway.workers.decode_packet_window`
on the *same* job set under each decode tier.  Records per-tier latency
percentiles, the cascade's escalation rate and reason histogram, the
implied realtime factor per tier, and the parity ledger (payloads the
full path recovers that the cascade loses must be zero; the safety suite
asserts it).  Writes ``BENCH_cascade.json``;
``tools/bench_report.py --compare`` gates CI against the committed
baseline.

Usage::

    PYTHONPATH=src python tools/bench_cascade.py                 # defaults
    PYTHONPATH=src python tools/bench_cascade.py --packets 40 \
        --collided-fraction 0.15 --out BENCH_cascade.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.channel.noise import awgn  # noqa: E402
from repro.gateway.workers import DecodeJob, decode_packet_window  # noqa: E402
from repro.hardware import LoRaRadio, OscillatorModel, TimingModel  # noqa: E402
from repro.phy.packet import LoRaFramer  # noqa: E402
from repro.phy.params import LoRaParams  # noqa: E402
from repro.utils import as_seed_sequence, ensure_rng  # noqa: E402

#: Tiers timed against each other on the identical job set.
BENCH_TIERS = ("full", "cascade")


def _summary(latencies_s: list[float]) -> dict:
    """Percentile summary of per-window decode latencies."""
    arr = np.asarray(latencies_s)
    return {
        "p50_s": float(np.percentile(arr, 50)),
        "p95_s": float(np.percentile(arr, 95)),
        "p99_s": float(np.percentile(arr, 99)),
        "mean_s": float(np.mean(arr)),
        "max_s": float(np.max(arr)),
    }


def build_workload(
    params: LoRaParams,
    n_packets: int,
    collided_fraction: float,
    payload_len: int,
    snr_db: float,
    seed: int,
    coding_rate: int = 4,
) -> tuple[list[DecodeJob], list[set[bytes]], int]:
    """Render the mixed job set: mostly clean windows, some collisions.

    Returns ``(jobs, truths, n_collided)`` where ``truths[i]`` is the set
    of payloads transmitted inside window ``i``.  Every transmission is a
    CRC-valid frame, so the full pipeline has a fair shot at recovering
    collided users and the parity ledger is meaningful.  Single-user
    windows carry board-tolerance impairments; collided users get
    well-separated offsets and a 10-20 dB amplitude spread (the regime
    Choir disentangles -- same recipe as ``tools/bench_decode.py``), so
    the escalated decode measures real SIC work rather than retry-ladder
    thrash on hopeless windows.
    """
    rng = ensure_rng(seed)
    framer = LoRaFramer(params, coding_rate=coding_rate)
    n_data = framer.n_symbols_for_payload(payload_len)
    n = params.samples_per_symbol
    amplitude = 10.0 ** (snr_db / 20.0)
    n_collided = int(round(n_packets * collided_fraction))
    jobs: list[DecodeJob] = []
    truths: list[set[bytes]] = []
    for i in range(n_packets):
        n_users = int(rng.integers(2, 5)) if i < n_collided else 1
        window = None
        truth: set[bytes] = set()
        for u in range(n_users):
            payload = bytes(rng.integers(0, 256, payload_len, dtype=np.uint8))
            if n_users > 1:
                cfo_bins = rng.uniform(2.0, params.chips_per_symbol - 4.0)
                radio = LoRaRadio(
                    params,
                    oscillator=OscillatorModel(params.bins_to_hz(cfo_bins)),
                    timing=TimingModel(rng.uniform(0.0, 8.0) / params.sample_rate),
                    node_id=u,
                    rng=rng,
                )
                user_amp = 10.0 ** (rng.uniform(10.0, 20.0) / 20.0)
            else:
                radio = LoRaRadio(params, node_id=u, rng=rng)
                user_amp = amplitude
            waveform, _, _ = radio.transmit_payload(payload, amplitude=user_amp)
            if window is None:
                window = np.concatenate(
                    [
                        np.zeros(2 * n, dtype=complex),
                        waveform,
                        np.zeros(n, dtype=complex),
                    ]
                )
            else:
                window[2 * n : 2 * n + waveform.size] += waveform
            truth.add(payload)
        samples = awgn(window, 1.0, rng=rng)
        jobs.append(
            DecodeJob(
                job_id=i,
                samples=samples,
                n_data_symbols=n_data,
                payload_len=payload_len,
                start_sample=0,
                detection_score=10.0,
                created_at=0.0,
            )
        )
        truths.append(truth)
    return jobs, truths, n_collided


def run_benchmark(
    spreading_factor: int = 7,
    n_packets: int = 30,
    collided_fraction: float = 0.1,
    payload_len: int = 4,
    snr_db: float = 15.0,
    seed: int = 0,
    inner: int = 3,
    sync_search_symbols: int = 3,
    max_users: int | None = 4,
) -> dict:
    """Time every tier over the identical mixed job set; return the report.

    Each window is decoded ``inner`` times per tier and the minimum kept
    (decode is deterministic per capture, so the min strips scheduler
    noise); the recorded outcome comes from the timed calls, which are
    bit-identical across repeats.
    """
    params = LoRaParams(spreading_factor=spreading_factor)
    jobs, truths, n_collided = build_workload(
        params, n_packets, collided_fraction, payload_len, snr_db, seed
    )
    stream_s = sum(job.samples.size for job in jobs) / params.sample_rate
    base_seed = as_seed_sequence(seed)
    tiers: dict[str, dict] = {}
    recovered_by: dict[str, list[set[bytes]]] = {}
    for tier in BENCH_TIERS:
        latencies: list[float] = []
        outcomes = []
        for job in jobs:
            elapsed = np.inf
            outcome = None
            for _ in range(inner):
                started = time.perf_counter()
                outcome = decode_packet_window(
                    job,
                    params,
                    base_seed,
                    sync_search_symbols=sync_search_symbols,
                    max_users=max_users,
                    decode_tier=tier,
                )
                elapsed = min(elapsed, time.perf_counter() - started)
            latencies.append(elapsed)
            outcomes.append(outcome)
        recovered = [
            {u.payload for u in o.users if u.crc_ok and u.payload is not None}
            for o in outcomes
        ]
        recovered_by[tier] = recovered
        total_s = float(np.sum(latencies))
        entry = {
            "latency_s": _summary(latencies),
            "total_s": total_s,
            "realtime_factor": stream_s / total_s if total_s > 0 else 0.0,
            "recovered": sum(
                len(got & truth) for got, truth in zip(recovered, truths)
            ),
        }
        if tier == "cascade":
            escalated = [o for o in outcomes if o.escalation_reason is not None]
            reasons: dict[str, int] = {}
            for o in escalated:
                reasons[o.escalation_reason] = reasons.get(o.escalation_reason, 0) + 1
            entry["tier0_ok"] = sum(1 for o in outcomes if o.tier == "tier0")
            entry["escalated"] = len(escalated)
            entry["escalation_rate"] = len(escalated) / len(outcomes)
            entry["escalation_reasons"] = dict(sorted(reasons.items()))
            for sub, member in (("tier0", "tier0"), ("full", "full")):
                split = [
                    lat
                    for lat, o in zip(latencies, outcomes)
                    if o.tier == member
                ]
                if split:
                    entry[f"{sub}_latency_s"] = _summary(split)
        tiers[tier] = entry
    parity = {
        "recovered_by_full_only": sum(
            len(f - c) for f, c in zip(recovered_by["full"], recovered_by["cascade"])
        ),
        "recovered_by_cascade_only": sum(
            len(c - f) for f, c in zip(recovered_by["full"], recovered_by["cascade"])
        ),
    }
    return {
        "benchmark": "cascade",
        "config": {
            "spreading_factor": spreading_factor,
            "n_packets": n_packets,
            "collided_fraction": collided_fraction,
            "payload_len": payload_len,
            "snr_db": snr_db,
            "seed": seed,
            "inner": inner,
            "sync_search_symbols": sync_search_symbols,
            "max_users": max_users,
        },
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "workload": {
            "n_windows": n_packets,
            "n_collided": n_collided,
            "n_transmitted": sum(len(t) for t in truths),
            "stream_s": stream_s,
        },
        "tiers": tiers,
        "speedup": tiers["full"]["total_s"] / tiers["cascade"]["total_s"],
        "parity": parity,
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sf", type=int, default=7)
    parser.add_argument("--packets", type=int, default=30)
    parser.add_argument(
        "--collided-fraction",
        type=float,
        default=0.1,
        help="fraction of windows carrying a 2-4-user collision",
    )
    parser.add_argument("--payload-len", type=int, default=4)
    parser.add_argument("--snr", type=float, default=15.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--inner", type=int, default=3, help="timing repeats per window (min kept)"
    )
    parser.add_argument("--out", default="BENCH_cascade.json")
    args = parser.parse_args(argv)
    result = run_benchmark(
        spreading_factor=args.sf,
        n_packets=args.packets,
        collided_fraction=args.collided_fraction,
        payload_len=args.payload_len,
        snr_db=args.snr,
        seed=args.seed,
        inner=args.inner,
    )
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    cascade = result["tiers"]["cascade"]
    print(
        f"cascade bench: {result['speedup']:.2f}x speedup over full"
        f" ({cascade['escalation_rate']:.0%} escalated),"
        f" parity full-only={result['parity']['recovered_by_full_only']}"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
