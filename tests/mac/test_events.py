"""Tests for the event scheduler."""

import pytest

from repro.mac import EventScheduler


class TestEventScheduler:
    def test_runs_in_time_order(self):
        scheduler = EventScheduler()
        log = []
        scheduler.schedule(2.0, lambda: log.append("b"))
        scheduler.schedule(1.0, lambda: log.append("a"))
        scheduler.schedule(3.0, lambda: log.append("c"))
        scheduler.run_until(10.0)
        assert log == ["a", "b", "c"]

    def test_ties_stable(self):
        scheduler = EventScheduler()
        log = []
        for name in "abc":
            scheduler.schedule(1.0, lambda n=name: log.append(n))
        scheduler.run_until(2.0)
        assert log == ["a", "b", "c"]

    def test_horizon_respected(self):
        scheduler = EventScheduler()
        log = []
        scheduler.schedule(5.0, lambda: log.append("late"))
        scheduler.run_until(2.0)
        assert log == []
        assert scheduler.pending() == 1
        assert scheduler.now == 2.0

    def test_events_can_schedule_events(self):
        scheduler = EventScheduler()
        log = []

        def first():
            log.append("first")
            scheduler.schedule(1.0, lambda: log.append("second"))

        scheduler.schedule(1.0, first)
        scheduler.run_until(5.0)
        assert log == ["first", "second"]

    def test_negative_delay_rejected(self):
        scheduler = EventScheduler()
        with pytest.raises(ValueError, match="delay"):
            scheduler.schedule(-1.0, lambda: None)

    def test_past_scheduling_rejected(self):
        scheduler = EventScheduler()
        scheduler.schedule(1.0, lambda: None)
        scheduler.run_until(2.0)
        with pytest.raises(ValueError, match="past"):
            scheduler.schedule_at(1.0, lambda: None)
