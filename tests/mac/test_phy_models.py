"""Tests for the MAC-level PHY outcome models."""

import numpy as np
import pytest

from repro.mac.phy import (
    ChoirPhyModel,
    ComposedPhy,
    MuMimoPhyModel,
    SingleUserPhy,
    Transmission,
)
from repro.phy import LoRaParams

PARAMS = LoRaParams(spreading_factor=8)


def _tx(node_id, snr_db=15.0):
    return Transmission(node_id=node_id, snr_db=snr_db)


class TestSingleUserPhy:
    def test_lone_transmission_decodes(self):
        phy = SingleUserPhy(PARAMS)
        assert phy.resolve([_tx(1)]) == {1}

    def test_below_threshold_lost(self):
        phy = SingleUserPhy(PARAMS)
        assert phy.resolve([_tx(1, snr_db=-30.0)]) == set()

    def test_collision_destroys_all(self):
        phy = SingleUserPhy(PARAMS)
        assert phy.resolve([_tx(1), _tx(2)]) == set()

    def test_capture_effect_optional(self):
        phy = SingleUserPhy(PARAMS, capture_margin_db=6.0)
        decoded = phy.resolve([_tx(1, snr_db=30.0), _tx(2, snr_db=5.0)])
        assert decoded == {1}

    def test_empty(self):
        assert SingleUserPhy(PARAMS).resolve([]) == set()


class TestChoirPhyModel:
    def test_decodes_many_concurrent(self):
        phy = ChoirPhyModel(PARAMS)
        rng = np.random.default_rng(0)
        transmissions = [_tx(i) for i in range(5)]
        counts = [len(phy.resolve(transmissions, rng=rng)) for _ in range(50)]
        # ~85% efficiency at 5 users (merges + fractional collisions cost
        # the rest, matching Fig. 8d's sub-linear scaling).
        assert np.mean(counts) > 3.7

    def test_merge_probability_grows_with_density(self):
        phy = ChoirPhyModel(PARAMS, offset_span_bins=20.0)  # cramped offsets
        rng = np.random.default_rng(1)
        few = np.mean(
            [len(phy.resolve([_tx(i) for i in range(2)], rng=rng)) / 2 for _ in range(200)]
        )
        many = np.mean(
            [len(phy.resolve([_tx(i) for i in range(12)], rng=rng)) / 12 for _ in range(200)]
        )
        assert many < few

    def test_snr_floor(self):
        phy = ChoirPhyModel(PARAMS)
        assert phy.resolve([_tx(1, snr_db=-30.0)], rng=0) == set()

    def test_near_far_limit(self):
        phy = ChoirPhyModel(PARAMS, near_far_limit_db=20.0, separation_bins=0.0)
        rng = np.random.default_rng(2)
        decoded = phy.resolve([_tx(1, snr_db=40.0), _tx(2, snr_db=5.0)], rng=rng)
        assert 2 not in decoded

    def test_max_decodable_cap(self):
        phy = ChoirPhyModel(PARAMS, max_decodable=3)
        rng = np.random.default_rng(3)
        decoded = phy.resolve([_tx(i) for i in range(10)], rng=rng)
        assert len(decoded) <= 3

    def test_reproducible(self):
        phy = ChoirPhyModel(PARAMS)
        txs = [_tx(i) for i in range(6)]
        a = phy.resolve(txs, rng=np.random.default_rng(5))
        b = phy.resolve(txs, rng=np.random.default_rng(5))
        assert a == b


class TestMuMimoPhyModel:
    def test_within_antenna_budget(self):
        phy = MuMimoPhyModel(PARAMS, n_antennas=3)
        assert phy.resolve([_tx(1), _tx(2), _tx(3)]) == {1, 2, 3}

    def test_over_budget_all_lost(self):
        phy = MuMimoPhyModel(PARAMS, n_antennas=3)
        assert phy.resolve([_tx(i) for i in range(4)]) == set()

    def test_zf_penalty_applied(self):
        phy = MuMimoPhyModel(PARAMS, n_antennas=2, zf_penalty_db=6.0, decode_snr_db=0.0)
        # At 3 dB SNR: passes alone, fails with the 6 dB multi-stream penalty.
        assert phy.resolve([_tx(1, snr_db=3.0)]) == {1}
        assert phy.resolve([_tx(1, snr_db=3.0), _tx(2, snr_db=3.0)]) == set()


class TestComposedPhy:
    def test_diversity_gain_improves_outcomes(self):
        base = ChoirPhyModel(PARAMS, collateral_symbol_error=0.2)
        composed = ComposedPhy(base, n_antennas=3)
        rng_a, rng_b = np.random.default_rng(7), np.random.default_rng(7)
        txs = [_tx(i, snr_db=0.0) for i in range(8)]
        base_total = sum(len(base.resolve(txs, rng=rng_a)) for _ in range(100))
        comp_total = sum(len(composed.resolve(txs, rng=rng_b)) for _ in range(100))
        assert comp_total >= base_total
