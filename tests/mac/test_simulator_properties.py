"""Property-based invariants of the network simulator.

Conservation laws that must hold for any MAC/PHY/traffic combination:
delivered <= transmitted, delivered bits = delivered packets x payload,
latencies are positive and bounded by the simulation horizon, and the
simulator is a pure function of its seed.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mac import (
    AlohaMac,
    ChoirMac,
    ChoirPhyModel,
    NetworkSimulator,
    NodeConfig,
    OracleMac,
    SingleUserPhy,
)
from repro.phy import LoRaParams

PARAMS = LoRaParams(spreading_factor=8, preamble_len=8)

mac_strategy = st.sampled_from(["aloha", "oracle", "choir"])
n_nodes_strategy = st.integers(min_value=1, max_value=8)
snr_strategy = st.floats(min_value=-20.0, max_value=25.0)


def _build(mac_name, n_nodes, snr_db, seed, period=None):
    nodes = [NodeConfig(i, snr_db=snr_db, period_s=period) for i in range(n_nodes)]
    if mac_name == "aloha":
        mac, phy = AlohaMac(), SingleUserPhy(PARAMS)
    elif mac_name == "oracle":
        mac, phy = OracleMac(), SingleUserPhy(PARAMS)
    else:
        mac, phy = ChoirMac(), ChoirPhyModel(PARAMS)
    return NetworkSimulator(PARAMS, phy, mac, nodes, rng=seed)


class TestConservation:
    @given(mac_strategy, n_nodes_strategy, snr_strategy, st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_delivered_bounded_by_transmissions(self, mac_name, n_nodes, snr, seed):
        metrics = _build(mac_name, n_nodes, snr, seed).run(5.0)
        assert metrics.delivered_packets <= metrics.total_transmissions

    @given(mac_strategy, n_nodes_strategy, st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_bits_match_packets(self, mac_name, n_nodes, seed):
        metrics = _build(mac_name, n_nodes, 15.0, seed).run(5.0)
        assert metrics.delivered_bits == metrics.delivered_packets * 160

    @given(mac_strategy, n_nodes_strategy, st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_latencies_positive_and_bounded(self, mac_name, n_nodes, seed):
        sim = _build(mac_name, n_nodes, 15.0, seed)
        metrics = sim.run(5.0)
        for latency in metrics.latencies_s:
            assert 0.0 < latency <= metrics.duration_s + sim.slot_s

    @given(mac_strategy, n_nodes_strategy, st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_deterministic_in_seed(self, mac_name, n_nodes, seed):
        a = _build(mac_name, n_nodes, 15.0, seed).run(5.0)
        b = _build(mac_name, n_nodes, 15.0, seed).run(5.0)
        assert a.delivered_packets == b.delivered_packets
        assert a.total_transmissions == b.total_transmissions

    @given(n_nodes_strategy, st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_per_node_counts_sum_to_total(self, n_nodes, seed):
        metrics = _build("choir", n_nodes, 15.0, seed).run(5.0)
        assert sum(metrics.per_node_delivered.values()) == metrics.delivered_packets

    @given(st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_periodic_delivery_bounded_by_arrivals(self, seed):
        sim = _build("oracle", 3, 15.0, seed, period=1.0)
        metrics = sim.run(10.0)
        max_arrivals = 3 * (int(metrics.duration_s / 1.0) + 1)
        assert metrics.delivered_packets <= max_arrivals
