"""Tests for the MAC protocols."""

import numpy as np
import pytest

from repro.mac.protocols import AlohaMac, ChoirMac, OracleMac


class TestAlohaMac:
    def test_all_ready_initially(self):
        mac = AlohaMac()
        mac.seed(np.random.default_rng(0))
        assert mac.select_transmitters(0, [1, 2, 3], None) == [1, 2, 3]

    def test_failure_triggers_backoff(self):
        mac = AlohaMac()
        mac.seed(np.random.default_rng(1))
        mac.on_result(0, [1, 2], set())  # collision: nobody decoded
        ready_later = mac.select_transmitters(1, [1, 2], None)
        # With windows doubled and random waits, usually not both retry at
        # slot 1; at minimum the wait bookkeeping must be populated.
        assert mac._wait_until[1] >= 1 and mac._wait_until[2] >= 1

    def test_success_resets_window(self):
        mac = AlohaMac()
        mac.seed(np.random.default_rng(2))
        mac.on_result(0, [1], set())
        mac.on_result(5, [1], {1})
        assert mac._windows[1] == mac.initial_window

    def test_window_capped(self):
        mac = AlohaMac(initial_window=1, max_window=8)
        mac.seed(np.random.default_rng(3))
        for slot in range(10):
            mac.on_result(slot, [1], set())
        assert mac._windows[1] == 8


class TestOracleMac:
    def test_one_per_slot(self):
        mac = OracleMac()
        for slot in range(6):
            chosen = mac.select_transmitters(slot, [3, 1, 2], None)
            assert len(chosen) == 1

    def test_round_robin_fair(self):
        mac = OracleMac()
        counts = {1: 0, 2: 0, 3: 0}
        for slot in range(30):
            chosen = mac.select_transmitters(slot, [1, 2, 3], None)[0]
            counts[chosen] += 1
        assert set(counts.values()) == {10}

    def test_empty_backlog(self):
        assert OracleMac().select_transmitters(0, [], None) == []


class TestChoirMac:
    def test_all_backlogged_transmit(self):
        mac = ChoirMac()
        assert mac.select_transmitters(0, [5, 1, 9], np.random.default_rng(0)) == [1, 5, 9]

    def test_group_size_cap(self):
        mac = ChoirMac(group_size=2)
        chosen = mac.select_transmitters(0, [1, 2, 3, 4], np.random.default_rng(1))
        assert len(chosen) == 2
        assert set(chosen) <= {1, 2, 3, 4}

    def test_group_smaller_than_cap(self):
        mac = ChoirMac(group_size=10)
        assert mac.select_transmitters(0, [1, 2], np.random.default_rng(2)) == [1, 2]
