"""Tests for the network simulator."""

import numpy as np
import pytest

from repro.mac import (
    AlohaMac,
    ChoirMac,
    ChoirPhyModel,
    NetworkSimulator,
    NodeConfig,
    OracleMac,
    SingleUserPhy,
)
from repro.phy import LoRaParams

PARAMS = LoRaParams(spreading_factor=8, preamble_len=8)


def _nodes(n, snr_db=15.0, **kwargs):
    return [NodeConfig(i, snr_db=snr_db, **kwargs) for i in range(n)]


class TestSimulatorBasics:
    def test_unique_node_ids_required(self):
        nodes = [NodeConfig(1, 10.0), NodeConfig(1, 10.0)]
        with pytest.raises(ValueError, match="unique"):
            NetworkSimulator(PARAMS, SingleUserPhy(PARAMS), OracleMac(), nodes)

    def test_packet_airtime(self):
        sim = NetworkSimulator(PARAMS, SingleUserPhy(PARAMS), OracleMac(), _nodes(1))
        # 160 bits at SF8 -> 20 data symbols + 8 preamble = 28 symbols.
        assert sim.packet_airtime_s(160) == pytest.approx(28 * PARAMS.symbol_duration)

    def test_oracle_saturated_throughput_is_slot_rate(self):
        sim = NetworkSimulator(
            PARAMS, SingleUserPhy(PARAMS), OracleMac(), _nodes(4), rng=0
        )
        metrics = sim.run(20.0)
        expected = 160 / sim.slot_s
        assert metrics.throughput_bps == pytest.approx(expected, rel=0.02)
        assert metrics.transmissions_per_packet == 1.0

    def test_delivered_never_exceeds_transmissions(self):
        for mac, phy in [
            (AlohaMac(), SingleUserPhy(PARAMS)),
            (ChoirMac(), ChoirPhyModel(PARAMS)),
        ]:
            sim = NetworkSimulator(PARAMS, phy, mac, _nodes(6), rng=1)
            metrics = sim.run(10.0)
            assert metrics.delivered_packets <= metrics.total_transmissions

    def test_reproducible(self):
        def run(seed):
            sim = NetworkSimulator(
                PARAMS, ChoirPhyModel(PARAMS), ChoirMac(), _nodes(5), rng=seed
            )
            return sim.run(10.0).delivered_packets

        assert run(42) == run(42)

    def test_zero_snr_nodes_deliver_nothing(self):
        sim = NetworkSimulator(
            PARAMS, SingleUserPhy(PARAMS), OracleMac(), _nodes(2, snr_db=-40.0), rng=2
        )
        metrics = sim.run(5.0)
        assert metrics.delivered_packets == 0
        assert metrics.throughput_bps == 0.0


class TestTrafficModels:
    def test_periodic_arrivals_limit_throughput(self):
        nodes = _nodes(3, period_s=1.0)
        sim = NetworkSimulator(PARAMS, SingleUserPhy(PARAMS), OracleMac(), nodes, rng=3)
        metrics = sim.run(30.0)
        # 3 nodes x 1 packet/s x 160 bits: arrival-limited, not slot-limited.
        assert metrics.throughput_bps == pytest.approx(480.0, rel=0.1)

    def test_saturated_latency_grows_with_population(self):
        small = NetworkSimulator(
            PARAMS, SingleUserPhy(PARAMS), OracleMac(), _nodes(2), rng=4
        ).run(20.0)
        large = NetworkSimulator(
            PARAMS, SingleUserPhy(PARAMS), OracleMac(), _nodes(8), rng=4
        ).run(20.0)
        assert large.mean_latency_s > small.mean_latency_s


class TestSystemComparison:
    def test_choir_beats_baselines_at_density(self):
        nodes = _nodes(8)
        results = {}
        for name, mac, phy in [
            ("aloha", AlohaMac(), SingleUserPhy(PARAMS)),
            ("oracle", OracleMac(), SingleUserPhy(PARAMS)),
            ("choir", ChoirMac(), ChoirPhyModel(PARAMS)),
        ]:
            sim = NetworkSimulator(PARAMS, phy, mac, nodes, rng=5)
            results[name] = sim.run(30.0)
        assert results["choir"].throughput_bps > results["oracle"].throughput_bps
        assert results["oracle"].throughput_bps > results["aloha"].throughput_bps
        assert results["choir"].mean_latency_s < results["aloha"].mean_latency_s

    def test_metrics_properties_empty(self):
        from repro.mac.simulator import MacMetrics

        empty = MacMetrics()
        assert empty.throughput_bps == 0.0
        assert empty.mean_latency_s == float("inf")
        assert empty.transmissions_per_packet == float("inf")


class TestChannelGrouping:
    def _one_slot(self, channels):
        # duration under one slot -> exactly one simulated slot, in which
        # every fresh Aloha node transmits immediately.
        nodes = [
            NodeConfig(node_id=i, snr_db=15.0, channel=channel)
            for i, channel in enumerate(channels)
        ]
        sim = NetworkSimulator(PARAMS, SingleUserPhy(PARAMS), AlohaMac(), nodes, rng=0)
        return sim.run(0.01)

    def test_same_channel_transmissions_collide(self):
        assert self._one_slot([0, 0]).delivered_packets == 0

    def test_distinct_channels_never_contend(self):
        # The same two transmissions on different uplink channels occupy
        # disjoint spectrum and both deliver.
        assert self._one_slot([0, 1]).delivered_packets == 2

    def test_grouping_is_per_channel_not_global(self):
        # Three nodes, two sharing channel 0: the pair collides, the node
        # alone on channel 1 still delivers.
        metrics = self._one_slot([0, 0, 1])
        assert metrics.delivered_packets == 1
        assert metrics.per_node_delivered == {2: 1}
