"""Tests for adaptive data rate and duty-cycle accounting."""

import pytest

from repro.mac.adr import AdrController, spreading_factor_for_snr
from repro.mac.duty import DutyCycleTracker
from repro.phy import LoRaParams


class TestSfLadder:
    def test_high_snr_fastest(self):
        assert spreading_factor_for_snr(25.0) == 7

    def test_low_snr_slowest(self):
        assert spreading_factor_for_snr(-20.0) == 12

    def test_monotone(self):
        sfs = [spreading_factor_for_snr(snr) for snr in range(-25, 26, 5)]
        assert sfs == sorted(sfs, reverse=True)


class TestAdrController:
    def test_starts_conservative(self):
        assert AdrController().spreading_factor == 12

    def test_upgrades_on_good_snr(self):
        adr = AdrController()
        for _ in range(10):
            adr.report_snr(25.0)
        assert adr.spreading_factor == 7

    def test_downgrades_immediately_on_bad_snr(self):
        adr = AdrController(initial_sf=7)
        adr.report_snr(25.0)
        # One terrible report moves the EWMA some of the way; several move
        # the assignment down without any hysteresis delay.
        for _ in range(8):
            adr.report_snr(-10.0)
        assert adr.spreading_factor > 7

    def test_hysteresis_blocks_marginal_upgrade(self):
        # Smoothed SNR just past the SF9 boundary must NOT flip a SF10
        # client: the upgrade needs `hysteresis_db` of headroom.
        adr = AdrController(initial_sf=10, hysteresis_db=3.0, smoothing=1.0)
        boundary = 2.0  # the SF9 assignment requirement
        adr.report_snr(boundary + 1.0)  # above boundary, below +3 dB
        assert adr.spreading_factor == 10
        adr.report_snr(boundary + 5.0)
        assert adr.spreading_factor == 9

    def test_ewma_smooths_outliers(self):
        adr = AdrController(initial_sf=11, smoothing=0.1)
        adr.report_snr(-5.0)  # consistent with SF11
        assert adr.spreading_factor == 11
        adr.report_snr(40.0)  # single outlier must not flip the assignment
        assert adr.spreading_factor == 11

    def test_params_for(self):
        adr = AdrController(initial_sf=9)
        params = adr.params_for(LoRaParams(spreading_factor=7, bandwidth=125e3))
        assert params.spreading_factor == 9
        assert params.bandwidth == 125e3

    def test_validation(self):
        with pytest.raises(ValueError, match="initial_sf"):
            AdrController(initial_sf=5)
        with pytest.raises(ValueError, match="smoothing"):
            AdrController(smoothing=0.0)


class TestDutyCycle:
    def test_budget_accounting(self):
        tracker = DutyCycleTracker(duty_cycle=0.01, window_s=100.0)
        assert tracker.budget_remaining_s(0.0) == pytest.approx(1.0)
        tracker.record_transmission(0.0, 0.4)
        assert tracker.budget_remaining_s(1.0) == pytest.approx(0.6)

    def test_blocks_when_exhausted(self):
        tracker = DutyCycleTracker(duty_cycle=0.01, window_s=100.0)
        tracker.record_transmission(0.0, 1.0)
        assert not tracker.can_transmit(1.0, 0.1)

    def test_window_expiry_restores_budget(self):
        tracker = DutyCycleTracker(duty_cycle=0.01, window_s=100.0)
        tracker.record_transmission(0.0, 1.0)
        assert tracker.can_transmit(150.0, 0.5)

    def test_max_packet_rate(self):
        tracker = DutyCycleTracker(duty_cycle=0.01)
        # 57 ms airtime at 1% duty -> ~0.175 packets/s.
        assert tracker.max_packet_rate_hz(0.0573) == pytest.approx(0.1745, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError, match="duty_cycle"):
            DutyCycleTracker(duty_cycle=0.0)
        with pytest.raises(ValueError, match="window"):
            DutyCycleTracker(window_s=-1.0)
        tracker = DutyCycleTracker()
        with pytest.raises(ValueError, match="duration"):
            tracker.record_transmission(0.0, -1.0)
        with pytest.raises(ValueError, match="airtime"):
            tracker.max_packet_rate_hz(0.0)

    def test_retransmissions_burn_budget_faster(self):
        # The regulatory face of the paper's retransmission metric: at
        # ALOHA's 4 tx/packet a node sustains 1/4 the reporting rate.
        tracker = DutyCycleTracker(duty_cycle=0.01)
        airtime = 0.0573
        choir_rate = tracker.max_packet_rate_hz(airtime * 1.4)
        aloha_rate = tracker.max_packet_rate_hz(airtime * 4.0)
        assert choir_rate / aloha_rate == pytest.approx(4.0 / 1.4, rel=0.01)
