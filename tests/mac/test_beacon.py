"""Tests for the beacon scheduler (Sec. 7.1)."""

import numpy as np
import pytest

from repro.mac.beacon import (
    BeaconRoundSimulator,
    BeaconScheduler,
    pooled_snr_db,
)
from repro.mac.phy import ChoirPhyModel
from repro.phy import LoRaParams

PARAMS = LoRaParams(spreading_factor=8)  # floor -15 dB


class TestPooledSnr:
    def test_doubles_to_3db(self):
        assert pooled_snr_db([0.0, 0.0]) == pytest.approx(3.01, abs=0.01)

    def test_empty(self):
        assert pooled_snr_db([]) == float("-inf")

    def test_dominated_by_strongest(self):
        assert pooled_snr_db([20.0, -30.0]) == pytest.approx(20.0, abs=0.01)


class TestBeaconScheduler:
    def test_strong_nodes_go_alone(self):
        scheduler = BeaconScheduler(PARAMS, margin_db=3.0)
        schedule = scheduler.build_schedule({0: 10.0, 1: 5.0})
        assert schedule.n_rounds == 2
        assert all(not g.is_team for g in schedule.groups)

    def test_weak_nodes_pooled_minimally(self):
        scheduler = BeaconScheduler(PARAMS, margin_db=3.0)
        # Floor+margin = -12 dB; four nodes at -17 dB pool to -11 dB.
        snrs = {i: -17.0 for i in range(4)}
        schedule = scheduler.build_schedule(snrs)
        teams = [g for g in schedule.groups if g.is_team]
        assert len(teams) == 1
        assert teams[0].size == 4
        assert teams[0].pooled_snr_db >= -12.0

    def test_mixed_population(self):
        scheduler = BeaconScheduler(PARAMS)
        snrs = {0: 10.0, 1: -16.0, 2: -16.0, 3: -16.5, 4: -16.5}
        schedule = scheduler.build_schedule(snrs)
        singleton_ids = [g.node_ids[0] for g in schedule.groups if not g.is_team]
        assert singleton_ids == [0]
        team_members = {nid for g in schedule.groups if g.is_team for nid in g.node_ids}
        assert team_members == {1, 2, 3, 4}
        assert schedule.unreachable == ()

    def test_unreachable_detected(self):
        scheduler = BeaconScheduler(PARAMS, max_team_size=4)
        snrs = {i: -40.0 for i in range(4)}  # 4 pooled: -34 dB, still < -12
        schedule = scheduler.build_schedule(snrs)
        assert set(schedule.unreachable) == {0, 1, 2, 3}
        assert schedule.n_rounds == 0

    def test_group_of_lookup(self):
        scheduler = BeaconScheduler(PARAMS)
        schedule = scheduler.build_schedule({7: 10.0})
        assert schedule.group_of(7).node_ids == (7,)
        assert schedule.group_of(99) is None

    def test_team_size_cap_respected(self):
        scheduler = BeaconScheduler(PARAMS, max_team_size=5)
        snrs = {i: -18.0 for i in range(20)}
        schedule = scheduler.build_schedule(snrs)
        for group in schedule.groups:
            assert group.size <= 5

    def test_invalid_team_size(self):
        with pytest.raises(ValueError, match="max_team_size"):
            BeaconScheduler(PARAMS, max_team_size=0)

    def test_resolution_gradient(self):
        # Closer (stronger) nodes end up in smaller groups -- the paper's
        # "resolution increases for sensors closer to the base station".
        scheduler = BeaconScheduler(PARAMS)
        snrs = {0: 5.0, 1: -16.0, 2: -16.0, 3: -21.0, 4: -21.0, 5: -21.0, 6: -21.5, 7: -21.5}
        schedule = scheduler.build_schedule(snrs)
        size_by_node = {
            nid: g.size for g in schedule.groups for nid in g.node_ids
        }
        assert size_by_node[0] == 1
        assert size_by_node[1] <= size_by_node[3]


class TestBeaconRoundSimulator:
    def test_mixed_rounds_deliver(self):
        scheduler = BeaconScheduler(PARAMS)
        sim = BeaconRoundSimulator(PARAMS, ChoirPhyModel(PARAMS), scheduler)
        snrs = {0: 12.0, 1: 8.0, 2: -17.0, 3: -17.0, 4: -17.0, 5: -17.0}
        metrics = sim.run(snrs, n_cycles=3, rng=np.random.default_rng(0))
        assert metrics.rounds == 3 * scheduler.build_schedule(snrs).n_rounds
        assert metrics.singleton_deliveries >= 4  # two strong nodes x 3 cycles-ish
        assert metrics.team_deliveries >= 3
        assert metrics.nodes_served >= {0, 1, 2}

    def test_unreachable_not_served(self):
        scheduler = BeaconScheduler(PARAMS, max_team_size=2)
        sim = BeaconRoundSimulator(PARAMS, ChoirPhyModel(PARAMS), scheduler)
        metrics = sim.run({0: -40.0, 1: -40.0}, n_cycles=2, rng=np.random.default_rng(1))
        assert metrics.total_deliveries == 0
        assert metrics.nodes_served == set()
