"""Tests for the LoRa framer (payload <-> symbols)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy import LoRaFramer, LoRaParams

PARAMS = LoRaParams(spreading_factor=8)


class TestFramer:
    @given(st.binary(min_size=0, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip(self, payload):
        framer = LoRaFramer(PARAMS, coding_rate=4)
        frame = framer.encode(payload)
        decoded = framer.decode(frame.symbols, len(payload))
        assert decoded.payload == payload
        assert decoded.crc_ok

    @pytest.mark.parametrize("cr", [1, 2, 3, 4])
    def test_roundtrip_all_coding_rates(self, cr):
        framer = LoRaFramer(PARAMS, coding_rate=cr)
        payload = b"choir!"
        frame = framer.encode(payload)
        decoded = framer.decode(frame.symbols, len(payload))
        assert decoded.payload == payload and decoded.crc_ok

    @pytest.mark.parametrize("sf", [7, 8, 9, 10])
    def test_roundtrip_spreading_factors(self, sf):
        params = LoRaParams(spreading_factor=sf)
        framer = LoRaFramer(params, coding_rate=4)
        payload = bytes(range(16))
        frame = framer.encode(payload)
        decoded = framer.decode(frame.symbols, len(payload))
        assert decoded.payload == payload and decoded.crc_ok

    def test_symbol_count_prediction(self):
        framer = LoRaFramer(PARAMS, coding_rate=4)
        for n in (0, 1, 7, 20):
            frame = framer.encode(bytes(n))
            assert frame.n_symbols == framer.n_symbols_for_payload(n)

    def test_single_corrupted_symbol_corrected_by_fec(self):
        framer = LoRaFramer(PARAMS, coding_rate=4)
        payload = b"temperature=21.5"
        frame = framer.encode(payload)
        symbols = frame.symbols.copy()
        symbols[3] ^= 0x01  # one wrong symbol -> scattered bit errors
        decoded = framer.decode(symbols, len(payload))
        assert decoded.payload == payload
        assert decoded.crc_ok
        assert decoded.corrected_codewords >= 1

    def test_heavy_corruption_fails_crc(self):
        framer = LoRaFramer(PARAMS, coding_rate=4)
        payload = b"hello world data"
        frame = framer.encode(payload)
        rng = np.random.default_rng(0)
        symbols = rng.integers(0, 256, frame.n_symbols)
        decoded = framer.decode(symbols, len(payload))
        assert not decoded.crc_ok

    def test_too_few_symbols_rejected(self):
        framer = LoRaFramer(PARAMS)
        frame = framer.encode(b"abcdef")
        with pytest.raises(ValueError, match="symbols"):
            framer.decode(frame.symbols[:2], 6)

    def test_invalid_coding_rate(self):
        with pytest.raises(ValueError, match="coding_rate"):
            LoRaFramer(PARAMS, coding_rate=0)

    def test_extra_symbols_ignored(self):
        framer = LoRaFramer(PARAMS)
        payload = b"xy"
        frame = framer.encode(payload)
        padded = np.concatenate([frame.symbols, np.zeros(5, dtype=np.int64)])
        decoded = framer.decode(padded, len(payload))
        assert decoded.payload == payload and decoded.crc_ok
