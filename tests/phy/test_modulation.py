"""Tests for CSS modulation and the frame modulator."""

import numpy as np
import pytest

from repro.phy import CssModulator, LoRaParams, modulate_symbols
from repro.phy.chirp import upchirp

PARAMS = LoRaParams(spreading_factor=8, preamble_len=8)


class TestModulateSymbols:
    def test_matches_individual_chirps(self):
        symbols = [0, 100, 255]
        waveform = modulate_symbols(PARAMS, symbols)
        n = PARAMS.samples_per_symbol
        for i, s in enumerate(symbols):
            assert np.allclose(waveform[i * n : (i + 1) * n], upchirp(PARAMS, s))

    def test_constant_envelope(self):
        waveform = modulate_symbols(PARAMS, [7, 77, 177])
        assert np.allclose(np.abs(waveform), 1.0)


class TestCssModulator:
    def test_preamble_is_base_chirps(self):
        mod = CssModulator(PARAMS)
        preamble = mod.preamble()
        assert preamble.size == PARAMS.preamble_len * PARAMS.samples_per_symbol
        n = PARAMS.samples_per_symbol
        assert np.allclose(preamble[:n], upchirp(PARAMS, 0))

    def test_frame_symbols_layout(self):
        mod = CssModulator(PARAMS)
        frame = mod.frame_symbols([9, 8, 7])
        assert list(frame[: PARAMS.preamble_len]) == [0] * PARAMS.preamble_len
        assert list(frame[PARAMS.preamble_len :]) == [9, 8, 7]

    def test_sync_word_included(self):
        mod = CssModulator(PARAMS, sync_word=42)
        frame = mod.frame_symbols([1])
        assert frame[PARAMS.preamble_len] == 42
        assert mod.frame_num_symbols(1) == PARAMS.preamble_len + 2

    def test_invalid_sync_word(self):
        with pytest.raises(ValueError, match="sync_word"):
            CssModulator(PARAMS, sync_word=256)

    def test_frame_waveform_length(self):
        mod = CssModulator(PARAMS)
        waveform = mod.frame_waveform([1, 2])
        expected = (PARAMS.preamble_len + 2) * PARAMS.samples_per_symbol
        assert waveform.size == expected
