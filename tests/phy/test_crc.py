"""Tests for CRC-16/CCITT."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phy.crc import append_crc, check_crc, crc16_ccitt


class TestCrc16:
    def test_known_vector(self):
        # CRC-16/CCITT (init 0x0000, aka XModem) of "123456789" is 0x31C3.
        assert crc16_ccitt(b"123456789") == 0x31C3

    def test_empty(self):
        assert crc16_ccitt(b"") == 0x0000

    @given(st.binary(min_size=0, max_size=128))
    def test_append_check_roundtrip(self, data):
        assert check_crc(append_crc(data))

    @given(st.binary(min_size=1, max_size=64), st.integers(min_value=0, max_value=7))
    def test_detects_single_bit_flip(self, data, bit):
        framed = bytearray(append_crc(data))
        framed[0] ^= 1 << bit
        assert not check_crc(bytes(framed))

    def test_check_too_short(self):
        assert not check_crc(b"")
        assert not check_crc(b"\x00")

    def test_crc_depends_on_order(self):
        assert crc16_ccitt(b"ab") != crc16_ccitt(b"ba")
