"""Tests for LoRaParams derived quantities and validation."""

import pytest

from repro.phy import LoRaParams


class TestValidation:
    def test_rejects_bad_spreading_factor(self):
        with pytest.raises(ValueError, match="spreading_factor"):
            LoRaParams(spreading_factor=5)
        with pytest.raises(ValueError, match="spreading_factor"):
            LoRaParams(spreading_factor=13)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError, match="bandwidth"):
            LoRaParams(bandwidth=0.0)

    def test_rejects_bad_preamble(self):
        with pytest.raises(ValueError, match="preamble_len"):
            LoRaParams(preamble_len=0)

    def test_rejects_fractional_oversampling(self):
        with pytest.raises(ValueError, match="oversampling"):
            LoRaParams(oversampling=0)


class TestDerivedQuantities:
    def test_chips_per_symbol(self):
        assert LoRaParams(spreading_factor=7).chips_per_symbol == 128
        assert LoRaParams(spreading_factor=12).chips_per_symbol == 4096

    def test_symbol_duration_sf8_125k(self):
        params = LoRaParams(spreading_factor=8, bandwidth=125_000.0)
        assert params.symbol_duration == pytest.approx(256 / 125_000.0)

    def test_sample_rate_with_oversampling(self):
        params = LoRaParams(bandwidth=125_000.0, oversampling=4)
        assert params.sample_rate == pytest.approx(500_000.0)
        assert params.samples_per_symbol == 4 * params.chips_per_symbol

    def test_bin_width(self):
        params = LoRaParams(spreading_factor=8, bandwidth=125_000.0)
        assert params.bin_width_hz == pytest.approx(488.28125)

    def test_raw_bit_rate_sf7(self):
        params = LoRaParams(spreading_factor=7, bandwidth=125_000.0)
        # SF7 at 125 kHz: 7 bits / (128/125000) s = 6836 bps.
        assert params.raw_bit_rate == pytest.approx(6835.94, rel=1e-4)

    def test_hz_bins_roundtrip(self):
        params = LoRaParams(spreading_factor=9)
        assert params.hz_to_bins(params.bins_to_hz(3.7)) == pytest.approx(3.7)

    def test_seconds_to_samples(self):
        params = LoRaParams(bandwidth=125_000.0)
        assert params.seconds_to_samples(1.0) == pytest.approx(125_000.0)

    def test_symbol_value_range(self):
        params = LoRaParams(spreading_factor=7)
        values = params.symbol_value_range()
        assert values.start == 0 and values.stop == 128

    def test_params_frozen(self):
        params = LoRaParams()
        with pytest.raises(AttributeError):
            params.spreading_factor = 9
