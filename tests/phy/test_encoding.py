"""Tests for the LoRa coding chain: Gray, Hamming, interleaver, whitening."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.encoding import (
    bits_to_bytes,
    bits_to_symbols,
    bytes_to_bits,
    deinterleave,
    gray_decode,
    gray_encode,
    hamming_decode,
    hamming_encode,
    interleave,
    symbols_to_bits,
    whiten,
)


class TestGray:
    @given(st.integers(min_value=0, max_value=2**20))
    def test_roundtrip(self, value):
        assert gray_decode(gray_encode(value)) == value

    @given(st.integers(min_value=0, max_value=2**12 - 2))
    def test_adjacent_codes_differ_by_one_bit(self, value):
        a = gray_encode(value)
        b = gray_encode(value + 1)
        assert bin(a ^ b).count("1") == 1

    def test_array_input(self):
        values = np.arange(16)
        encoded = gray_encode(values)
        decoded = gray_decode(encoded)
        assert np.array_equal(decoded, values)

    def test_known_values(self):
        assert gray_encode(0) == 0
        assert gray_encode(1) == 1
        assert gray_encode(2) == 3
        assert gray_encode(3) == 2


class TestHamming:
    @given(st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=16))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_all_rates(self, nibbles):
        for cr in (1, 2, 3, 4):
            bits = hamming_encode(nibbles, cr)
            decoded, corrected = hamming_decode(bits, cr)
            assert list(decoded) == nibbles
            assert corrected == 0

    @given(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=40, deadline=None)
    def test_single_bit_error_corrected_cr4(self, nibble, flip_pos):
        bits = hamming_encode([nibble], 4)
        bits[flip_pos] ^= 1
        decoded, corrected = hamming_decode(bits, 4)
        assert decoded[0] == nibble

    def test_single_bit_error_corrected_cr3(self):
        bits = hamming_encode([9], 3)
        bits[2] ^= 1
        decoded, _ = hamming_decode(bits, 3)
        assert decoded[0] == 9

    def test_rate_lengths(self):
        for cr in (1, 2, 3, 4):
            assert hamming_encode([5], cr).size == 4 + cr

    def test_invalid_rate(self):
        with pytest.raises(ValueError, match="coding_rate"):
            hamming_encode([1], 5)
        with pytest.raises(ValueError, match="coding_rate"):
            hamming_decode(np.zeros(8, dtype=np.uint8), 0)

    def test_invalid_nibble(self):
        with pytest.raises(ValueError, match="nibble"):
            hamming_encode([16], 4)

    def test_misaligned_stream(self):
        with pytest.raises(ValueError, match="multiple"):
            hamming_decode(np.zeros(7, dtype=np.uint8), 4)

    def test_empty(self):
        assert hamming_encode([], 4).size == 0


class TestInterleaver:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        sf, cw = 8, 8
        bits = rng.integers(0, 2, sf * cw).astype(np.uint8)
        assert np.array_equal(deinterleave(interleave(bits, sf, cw), sf, cw), bits)

    def test_is_permutation(self):
        sf, cw = 7, 8
        bits = np.arange(sf * cw) % 2
        out = interleave(bits.astype(np.uint8), sf, cw)
        assert sorted(out.tolist()) == sorted(bits.tolist())

    def test_scatters_codeword_bits(self):
        # One codeword's bits must land in distinct symbol groups.
        sf, cw = 8, 8
        bits = np.zeros(sf * cw, dtype=np.uint8)
        bits[:sf] = 1  # first codeword all ones
        out = interleave(bits, sf, cw)
        symbols = out.reshape(sf, cw)
        # Every column (symbol) carries at most... the diagonal pattern
        # spreads the codeword across symbols: no symbol gets everything.
        per_symbol = symbols.sum(axis=1)
        assert per_symbol.max() < sf

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="expected"):
            interleave(np.zeros(10, dtype=np.uint8), 8, 8)


class TestWhitening:
    def test_involutive(self):
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, 200).astype(np.uint8)
        assert np.array_equal(whiten(whiten(bits)), bits)

    def test_breaks_runs(self):
        zeros = np.zeros(256, dtype=np.uint8)
        whitened = whiten(zeros)
        # The whitening sequence is balanced-ish: no long constant runs.
        assert 0.3 < whitened.mean() < 0.7


class TestPacking:
    @given(st.binary(min_size=0, max_size=64))
    def test_bytes_bits_roundtrip(self, data):
        assert bits_to_bytes(bytes_to_bits(data))[: len(data)] == data

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=32))
    @settings(max_examples=30, deadline=None)
    def test_symbols_bits_roundtrip(self, values):
        symbols = np.array(values) % 256
        bits = symbols_to_bits(symbols, 8)
        back = bits_to_symbols(bits, 8)
        assert np.array_equal(back, symbols)

    def test_bits_to_symbols_pads(self):
        bits = np.ones(10, dtype=np.uint8)
        symbols = bits_to_symbols(bits, 8)
        assert symbols.size == 2
