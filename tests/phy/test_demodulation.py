"""Tests for the standard (non-Choir) single-user demodulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.noise import awgn
from repro.phy import CssDemodulator, CssModulator, LoRaParams, demodulate_symbols, modulate_symbols
from repro.phy.demodulation import demodulate_symbol
from repro.hardware import LoRaRadio, OscillatorModel, TimingModel

PARAMS = LoRaParams(spreading_factor=8, preamble_len=8)


class TestSymbolDemodulation:
    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=16))
    @settings(max_examples=20, deadline=None)
    def test_noiseless_roundtrip(self, symbols):
        waveform = modulate_symbols(PARAMS, symbols)
        assert list(demodulate_symbols(PARAMS, waveform)) == symbols

    def test_noisy_roundtrip_high_snr(self):
        rng = np.random.default_rng(0)
        symbols = rng.integers(0, 256, 20)
        waveform = modulate_symbols(PARAMS, symbols) * 5.0
        noisy = awgn(waveform, 1.0, rng=rng)
        assert np.array_equal(demodulate_symbols(PARAMS, noisy), symbols)

    def test_wrong_window_size_rejected(self):
        with pytest.raises(ValueError, match="expected"):
            demodulate_symbol(PARAMS, np.zeros(10, dtype=complex))


class TestFrameDemodulation:
    def test_frame_with_integer_cfo_corrected(self):
        rng = np.random.default_rng(1)
        symbols = rng.integers(0, 256, 12)
        radio = LoRaRadio(
            PARAMS,
            oscillator=OscillatorModel(PARAMS.bins_to_hz(7.0)),  # integer bins
            timing=TimingModel(0.0),
            rng=rng,
        )
        waveform, _ = radio.transmit_symbols(symbols)
        demod = CssDemodulator(PARAMS)
        decoded = demod.demodulate_frame(waveform, len(symbols))
        assert np.array_equal(decoded, symbols)

    def test_collision_garbles_standard_receiver(self):
        # The premise of the paper: a standard receiver cannot decode a
        # same-SF collision.
        rng = np.random.default_rng(2)
        symbols_a = rng.integers(0, 256, 12)
        symbols_b = rng.integers(0, 256, 12)
        mod = CssModulator(PARAMS)
        mixed = mod.frame_waveform(symbols_a) + mod.frame_waveform(symbols_b) * np.exp(
            2j * np.pi * PARAMS.bins_to_hz(40.5) * np.arange(mod.frame_waveform(symbols_b).size) / PARAMS.sample_rate
        )
        demod = CssDemodulator(PARAMS)
        decoded = demod.demodulate_frame(mixed, 12)
        accuracy_a = np.mean(decoded == symbols_a)
        accuracy_b = np.mean(decoded == symbols_b)
        # At best the standard receiver captures ONE user (never both).
        assert not (accuracy_a == 1.0 and accuracy_b == 1.0)
        assert min(accuracy_a, accuracy_b) < 0.5

    def test_too_short_waveform(self):
        demod = CssDemodulator(PARAMS)
        with pytest.raises(ValueError, match="too short"):
            demod.demodulate_frame(np.zeros(10, dtype=complex), 4)
