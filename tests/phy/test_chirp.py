"""Tests for chirp synthesis: dechirp purity, delays, orthogonality."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy import LoRaParams, downchirp, upchirp
from repro.phy.chirp import chirp_train, delayed_chirp_train, instantaneous_frequency

PARAMS = LoRaParams(spreading_factor=8, bandwidth=125_000.0)


def _peak_bin(dechirped: np.ndarray, oversample: int = 1) -> float:
    spectrum = np.abs(np.fft.fft(dechirped, dechirped.size * oversample))
    return np.argmax(spectrum) / oversample


class TestUpchirp:
    def test_unit_amplitude(self):
        chirp = upchirp(PARAMS, 0)
        assert np.allclose(np.abs(chirp), 1.0)

    def test_length(self):
        assert upchirp(PARAMS, 0).size == PARAMS.samples_per_symbol

    def test_symbol_out_of_range(self):
        with pytest.raises(ValueError, match="symbol"):
            upchirp(PARAMS, 256)
        with pytest.raises(ValueError, match="symbol"):
            upchirp(PARAMS, -1)

    @given(st.integers(min_value=0, max_value=255))
    @settings(max_examples=30, deadline=None)
    def test_dechirp_gives_pure_tone_at_symbol(self, symbol):
        dechirped = upchirp(PARAMS, symbol) * downchirp(PARAMS)
        assert _peak_bin(dechirped) == symbol
        # Purity: all energy in one bin.
        spectrum = np.abs(np.fft.fft(dechirped))
        assert spectrum[symbol] == pytest.approx(PARAMS.chips_per_symbol, rel=1e-9)

    def test_distinct_symbols_orthogonal(self):
        a = upchirp(PARAMS, 10)
        b = upchirp(PARAMS, 11)
        assert abs(np.vdot(a, b)) < 1e-6 * a.size

    def test_oversampled_chirp_band_limited(self):
        params = LoRaParams(spreading_factor=8, oversampling=4)
        chirp = upchirp(params, 0)
        freqs = instantaneous_frequency(chirp, params.sample_rate)
        assert np.all(np.abs(freqs) <= params.bandwidth / 2 + params.bin_width_hz)


class TestChirpTrain:
    def test_concatenation_length(self):
        train = chirp_train(PARAMS, [0, 1, 2])
        assert train.size == 3 * PARAMS.samples_per_symbol

    def test_empty_train(self):
        assert chirp_train(PARAMS, []).size == 0

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            chirp_train(PARAMS, np.zeros((2, 2), dtype=int))

    def test_preamble_phase_continuous(self):
        # Consecutive symbol-0 chirps are phase continuous for even N.
        train = chirp_train(PARAMS, [0, 0])
        n = PARAMS.samples_per_symbol
        jump = np.angle(train[n] * np.conj(train[n - 1]))
        step = np.angle(train[1] * np.conj(train[0]))
        assert abs(jump - step) < 0.1


class TestDelayedChirpTrain:
    def test_zero_delay_matches_plain_train(self):
        plain = chirp_train(PARAMS, [3, 200])
        delayed = delayed_chirp_train(PARAMS, [3, 200], 0.0)
        assert np.allclose(plain, delayed[: plain.size])

    def test_integer_delay_prefixes_zeros(self):
        delayed = delayed_chirp_train(PARAMS, [0], 5.0)
        assert np.allclose(delayed[:5], 0.0)
        assert abs(delayed[5]) == pytest.approx(1.0)

    @given(st.floats(min_value=0.0, max_value=30.0))
    @settings(max_examples=20, deadline=None)
    def test_delay_shifts_peak_down(self, delay):
        # Dechirping a delayed symbol-0 train in a window past the start
        # gives a pure tone at -delay bins (Eqn. 5).
        waveform = delayed_chirp_train(PARAMS, [0, 0, 0], delay)
        n = PARAMS.samples_per_symbol
        window = waveform[n : 2 * n] * downchirp(PARAMS)
        peak = _peak_bin(window, oversample=16)
        expected = (-delay) % PARAMS.chips_per_symbol
        distance = min(abs(peak - expected), PARAMS.chips_per_symbol - abs(peak - expected))
        assert distance < 0.2

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="delay"):
            delayed_chirp_train(PARAMS, [0], -1.0)

    def test_oversampling_rejected(self):
        params = LoRaParams(oversampling=2)
        with pytest.raises(ValueError, match="oversampling"):
            delayed_chirp_train(params, [0], 1.0)


class TestInstantaneousFrequency:
    def test_constant_tone(self):
        tone = np.exp(2j * np.pi * 1000.0 * np.arange(1000) / 125_000.0)
        freqs = instantaneous_frequency(tone, 125_000.0)
        assert np.allclose(freqs, 1000.0, atol=1.0)

    def test_chirp_sweeps_linearly(self):
        chirp = upchirp(PARAMS, 0)
        freqs = instantaneous_frequency(chirp, PARAMS.sample_rate)
        # First half of the sweep (before the alias wrap) is linear.
        half = freqs[: PARAMS.samples_per_symbol // 2 - 1]
        slope = np.polyfit(np.arange(half.size), half, 1)[0]
        expected = PARAMS.bandwidth / PARAMS.samples_per_symbol
        assert slope == pytest.approx(expected, rel=0.05)

    def test_short_input(self):
        assert instantaneous_frequency(np.zeros(1), 1.0).size == 0
