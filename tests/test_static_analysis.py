"""Tier-1 static-analysis gate.

Three layers, in increasing specificity:

1. ``repro-lint`` (tools/repro_lint.py) -- the repo-specific AST rules
   R001-R006.  Pure stdlib, so it ALWAYS runs; the source tree must be
   clean.
2. ``ruff`` -- general lint (pycodestyle, pyflakes, bugbear, numpy rules,
   import sorting) per the ``[tool.ruff]`` table in pyproject.toml.  Skipped
   when ruff is not installed (it is an optional ``lint`` extra).
3. ``mypy`` -- the strict-clean module set (``repro.utils``,
   ``repro.tools``) per the gradual-strictness table in pyproject.toml.
   Skipped when mypy is not installed.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.tools.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def _run(cmd):
    return subprocess.run(cmd, cwd=REPO_ROOT, capture_output=True, text=True)


class TestReproLintGate:
    def test_source_tree_is_lint_clean(self):
        diagnostics = lint_paths([SRC])
        rendered = "\n".join(d.format() for d in diagnostics)
        assert not diagnostics, f"repro-lint findings:\n{rendered}"

    def test_tools_and_wrapper_are_lint_clean(self):
        diagnostics = lint_paths([REPO_ROOT / "tools"])
        rendered = "\n".join(d.format() for d in diagnostics)
        assert not diagnostics, f"repro-lint findings:\n{rendered}"

    def test_cli_exits_zero_on_tree(self):
        result = _run([sys.executable, "tools/repro_lint.py", "src"])
        assert result.returncode == 0, result.stdout + result.stderr


class TestRuffGate:
    @pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
    def test_ruff_check_is_clean(self):
        result = _run(["ruff", "check", "src", "tests", "tools"])
        assert result.returncode == 0, result.stdout + result.stderr


class TestMypyGate:
    @pytest.mark.skipif(
        shutil.which("mypy") is None, reason="mypy not installed"
    )
    def test_strict_module_set_passes(self):
        result = _run(
            [
                "mypy",
                "-p",
                "repro.utils",
                "-p",
                "repro.tools",
            ]
        )
        assert result.returncode == 0, result.stdout + result.stderr


class TestTypingArtifacts:
    def test_py_typed_marker_ships(self):
        assert (SRC / "repro" / "py.typed").exists()

    def test_lint_extra_declared(self):
        try:
            import tomllib
        except ModuleNotFoundError:  # Python < 3.11
            pytest.skip("tomllib unavailable")
        config = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
        extras = config["project"]["optional-dependencies"]
        assert any(dep.startswith("mypy") for dep in extras["lint"])
        assert any(dep.startswith("ruff") for dep in extras["lint"])
        assert (
            config["project"]["scripts"]["repro-lint"]
            == "repro.tools.analysis.cli:main"
        )
        assert "mypy" in config["tool"]
        assert "ruff" in config["tool"]
