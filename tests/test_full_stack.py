"""Full-stack integration: MAC simulator driven by the waveform decoder.

The deepest end-to-end path in the library: the slot-synchronous MAC
nominates transmitters, each slot's collision is synthesized at the
waveform level from persistent per-node radios, and the complete Choir
receiver decodes it.  Slow, so populations and durations are small -- the
point is that every layer composes.
"""

import numpy as np
import pytest

from repro.mac import AlohaMac, ChoirMac, NetworkSimulator, NodeConfig, OracleMac, SingleUserPhy
from repro.mac.waveform_phy import WaveformPhy
from repro.phy import LoRaParams

PARAMS = LoRaParams(spreading_factor=8, preamble_len=8)


class TestWaveformMacSimulation:
    def test_choir_mac_over_waveform_phy(self):
        nodes = [
            NodeConfig(i, snr_db=snr, payload_bits=64)
            for i, snr in enumerate([18.0, 14.0, 10.0])
        ]
        phy = WaveformPhy(PARAMS, rng=np.random.default_rng(0))
        sim = NetworkSimulator(PARAMS, phy, ChoirMac(), nodes, rng=1)
        metrics = sim.run(1.0)  # a handful of slots
        # Three concurrent users per slot, all separable: near-ideal
        # delivery through the *real* decoder.
        assert metrics.delivered_packets >= 3 * (metrics.duration_s // sim.slot_s) * 0.6
        assert metrics.transmissions_per_packet < 2.0

    def test_waveform_choir_beats_waveform_oracle(self):
        nodes = [
            NodeConfig(i, snr_db=15.0, payload_bits=64) for i in range(3)
        ]
        choir = NetworkSimulator(
            PARAMS,
            WaveformPhy(PARAMS, rng=np.random.default_rng(2)),
            ChoirMac(),
            nodes,
            rng=3,
        ).run(1.0)
        oracle = NetworkSimulator(
            PARAMS, SingleUserPhy(PARAMS), OracleMac(), nodes, rng=3
        ).run(1.0)
        assert choir.throughput_bps > oracle.throughput_bps

    def test_retransmission_recovers_failed_slot(self):
        # With one marginal node, some slots fail; the MAC retries and the
        # packet eventually lands (tx/packet > 1 but finite).
        nodes = [
            NodeConfig(0, snr_db=16.0, payload_bits=64),
            NodeConfig(1, snr_db=-13.0, payload_bits=64),  # near the floor
        ]
        phy = WaveformPhy(PARAMS, rng=np.random.default_rng(4))
        sim = NetworkSimulator(PARAMS, phy, ChoirMac(), nodes, rng=5)
        metrics = sim.run(2.0)
        assert metrics.per_node_delivered.get(0, 0) > 0
        assert metrics.total_transmissions >= metrics.delivered_packets
