"""Shared fixtures for the streaming-gateway tests.

sf7 keeps frames short (24 symbols = 3072 samples for 4-byte payloads),
so end-to-end streaming runs stay fast enough for tier-1.
"""

import pytest

from repro.mac.simulator import NodeConfig
from repro.phy.params import LoRaParams

PARAMS = LoRaParams(spreading_factor=7)

#: Application payload bytes used across the gateway tests.
PAYLOAD_LEN = 4


def periodic_node(node_id: int = 0, snr_db: float = 15.0, period_s: float = 0.25) -> NodeConfig:
    """One periodically transmitting node."""
    return NodeConfig(node_id=node_id, snr_db=snr_db, period_s=period_s)


@pytest.fixture
def params() -> LoRaParams:
    return PARAMS
