"""End-to-end tests for the streaming gateway runtime."""

import numpy as np
import pytest

from repro.gateway import (
    Gateway,
    GatewayConfig,
    GatewayReport,
    IqFileSource,
    SyntheticTrafficSource,
)
from repro.mac.simulator import NodeConfig
from tests.gateway.conftest import PARAMS, PAYLOAD_LEN, periodic_node


def _run(source, **overrides) -> GatewayReport:
    config = GatewayConfig(
        params=PARAMS,
        payload_len=PAYLOAD_LEN,
        executor=overrides.pop("executor", "serial"),
        seed=overrides.pop("seed", 0),
        **overrides,
    )
    return Gateway(config).run(source)


class TestEndToEnd:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_decoded_payloads_match_transmitted(self, seed):
        # The PR's acceptance test: a deterministic seed drives synthetic
        # traffic through the full streaming path (chunked ingest, ring,
        # detection, alignment, decode, CRC) and every transmitted
        # payload comes back out.
        source = SyntheticTrafficSource(
            PARAMS, [periodic_node()], duration_s=1.0, payload_len=PAYLOAD_LEN, rng=seed
        )
        report = _run(source, seed=seed)
        sent = sorted(p.payload for p in source.transmitted)
        assert len(sent) == 4
        assert sorted(report.decoded_payloads) == sent
        assert report.packets_detected == len(sent)
        assert report.packets_dropped == 0

    def test_two_node_traffic_decodes(self):
        nodes = [
            periodic_node(node_id=0, snr_db=15.0, period_s=0.45),
            periodic_node(node_id=1, snr_db=12.0, period_s=0.6),
        ]
        source = SyntheticTrafficSource(
            PARAMS, nodes, duration_s=1.5, payload_len=PAYLOAD_LEN, rng=0
        )
        report = _run(source)
        sent = sorted(p.payload for p in source.transmitted)
        assert sorted(report.decoded_payloads) == sent

    def test_thread_executor_matches_serial(self):
        def run(executor):
            source = SyntheticTrafficSource(
                PARAMS, [periodic_node()], duration_s=1.0, payload_len=PAYLOAD_LEN, rng=0
            )
            return _run(source, executor=executor, n_workers=4 if executor == "thread" else 1)

        serial, threaded = run("serial"), run("thread")
        assert sorted(serial.decoded_payloads) == sorted(threaded.decoded_payloads)
        by_id_serial = {o.job_id: o.payload for o in serial.outcomes}
        by_id_thread = {o.job_id: o.payload for o in threaded.outcomes}
        assert by_id_serial == by_id_thread

    def test_back_to_back_saturated_traffic(self):
        # Saturated node: frames separated by one guard symbol only.
        source = SyntheticTrafficSource(
            PARAMS,
            [NodeConfig(node_id=0, snr_db=15.0, period_s=None)],
            duration_s=0.25,
            payload_len=PAYLOAD_LEN,
            rng=0,
        )
        report = _run(source)
        sent = sorted(p.payload for p in source.transmitted)
        assert len(sent) > 4
        assert sorted(report.decoded_payloads) == sent

    def test_noise_only_stream_detects_nothing(self):
        source = SyntheticTrafficSource(
            PARAMS, [], duration_s=0.5, payload_len=PAYLOAD_LEN, rng=0
        )
        report = _run(source)
        assert report.packets_detected == 0
        assert report.packets_decoded == 0
        assert report.samples_in == source.duration_samples

    def test_file_source_replay_decodes_same_payloads(self, tmp_path):
        source = SyntheticTrafficSource(
            PARAMS, [periodic_node(period_s=0.3)], duration_s=0.7,
            payload_len=PAYLOAD_LEN, rng=2,
        )
        stream = np.concatenate(list(source.chunks()))
        path = tmp_path / "capture.npy"
        np.save(path, stream)
        report = _run(IqFileSource(PARAMS, str(path)))
        sent = sorted(p.payload for p in source.transmitted)
        assert len(sent) > 0
        assert sorted(report.decoded_payloads) == sent


@pytest.fixture(scope="module")
def report_and_sent() -> tuple[GatewayReport, list[bytes]]:
    source = SyntheticTrafficSource(
        PARAMS, [periodic_node()], duration_s=1.0, payload_len=PAYLOAD_LEN, rng=0
    )
    return _run(source), sorted(p.payload for p in source.transmitted)


class TestReport:
    def test_summary_mentions_every_stage(self, report_and_sent):
        report, _ = report_and_sent
        text = report.summary()
        assert "gateway run summary" in text
        assert "detected" in text and "decoded" in text and "dropped" in text
        for stage in ("ingest", "detect", "queue-wait", "decode"):
            assert stage in text
        assert "p50=" in text and "p95=" in text

    def test_rates_are_consistent(self, report_and_sent):
        report, sent = report_and_sent
        assert report.packets_decoded == len(sent)
        assert report.decode_success_rate == 1.0
        assert report.drop_rate == 0.0
        assert report.packets_per_s > 0
        assert report.samples_per_s > 0
        assert report.stream_s == pytest.approx(1.0)
        assert report.realtime_factor == pytest.approx(
            report.stream_s / report.wall_s, rel=1e-6
        )

    def test_telemetry_snapshot_in_report(self, report_and_sent):
        report, _ = report_and_sent
        assert report.telemetry["detect.packets"]["value"] == report.packets_detected
        assert report.telemetry["decode.decode_s"]["count"] == len(report.outcomes)


class TestConfig:
    def test_frame_geometry(self):
        config = GatewayConfig(params=PARAMS, payload_len=PAYLOAD_LEN)
        assert config.n_data_symbols() == 16
        assert config.frame_samples() == (PARAMS.preamble_len + 16) * PARAMS.samples_per_symbol

    def test_ring_must_hold_two_frames(self):
        config = GatewayConfig(params=PARAMS, payload_len=PAYLOAD_LEN, ring_symbols=10)
        with pytest.raises(ValueError, match="two"):
            Gateway(config)

    def test_explicit_ring_size_accepted(self):
        config = GatewayConfig(params=PARAMS, payload_len=PAYLOAD_LEN, ring_symbols=96)
        source = SyntheticTrafficSource(
            PARAMS, [periodic_node(period_s=0.3)], duration_s=0.4,
            payload_len=PAYLOAD_LEN, rng=0,
        )
        report = Gateway(config).run(source)
        sent = sorted(p.payload for p in source.transmitted)
        assert sorted(report.decoded_payloads) == sent
