"""Streaming-relevant edge cases for the packet-detection search.

The gateway consumes its ring front-to-back, so detection must (a) find
the *first* packet when several sit in one capture, (b) not fire on pure
noise, and (c) recover packets whose samples arrive split across chunk
boundaries.
"""

import numpy as np
import pytest

from repro.channel.noise import awgn
from repro.core.detection import align_to_window_grid, sliding_packet_search
from repro.gateway import Gateway, GatewayConfig, SyntheticTrafficSource
from repro.hardware.radio import LoRaRadio
from tests.gateway.conftest import PARAMS, PAYLOAD_LEN, periodic_node


def _frame(seed: int, amplitude: float) -> np.ndarray:
    rng = np.random.default_rng(seed)
    radio = LoRaRadio(PARAMS, node_id=seed, rng=rng)
    payload = bytes(rng.integers(0, 256, PAYLOAD_LEN, dtype=np.uint8))
    waveform, _, _ = radio.transmit_payload(payload, amplitude=amplitude)
    return waveform


class TestEarliestDetection:
    def test_back_to_back_packets_report_the_first(self):
        # A weak packet directly followed by a much stronger one, no idle
        # gap: global-best search locks onto the strong one, but the
        # streaming consumer needs the first.
        n = PARAMS.samples_per_symbol
        rng = np.random.default_rng(0)
        capture = np.concatenate(
            [np.zeros(2 * n, dtype=complex), _frame(1, 4.0), _frame(2, 12.0)]
        )
        capture = awgn(capture, 1.0, rng=rng)
        first = sliding_packet_search(PARAMS, capture, earliest=True)
        best = sliding_packet_search(PARAMS, capture, earliest=False)
        assert first.detected and best.detected
        assert first.start_window == 2
        assert best.start_window > first.start_window  # strong one wins globally

    def test_earliest_still_refines_locally(self):
        # With one packet, earliest mode must agree with the global best.
        n = PARAMS.samples_per_symbol
        rng = np.random.default_rng(1)
        capture = np.concatenate(
            [np.zeros(5 * n, dtype=complex), _frame(3, 10.0), np.zeros(3 * n, dtype=complex)]
        )
        capture = awgn(capture, 1.0, rng=rng)
        first = sliding_packet_search(PARAMS, capture, earliest=True)
        best = sliding_packet_search(PARAMS, capture, earliest=False)
        assert first.start_window == best.start_window == 5

    def test_all_noise_stream_has_no_false_detection(self):
        # A long all-noise capture: the pfa calibration divides by the
        # number of starts, so the search-level false-alarm rate holds.
        rng = np.random.default_rng(2)
        n = PARAMS.samples_per_symbol
        noise = (
            rng.standard_normal(200 * n) + 1j * rng.standard_normal(200 * n)
        ) / np.sqrt(2)
        for earliest in (False, True):
            result = sliding_packet_search(PARAMS, noise, earliest=earliest)
            assert not result.detected


class TestAlignCandidateRange:
    def test_range_bounds_the_estimate(self):
        n = PARAMS.samples_per_symbol
        rng = np.random.default_rng(3)
        shift = 150
        capture = np.concatenate(
            [np.zeros(shift, dtype=complex), _frame(4, 10.0), np.zeros(n, dtype=complex)]
        )
        capture = awgn(capture, 1.0, rng=rng)
        start, score = align_to_window_grid(
            PARAMS, capture, candidate_range=(0, 2 * n)
        )
        assert 0 <= start < 2 * n
        assert score > 1.0

    def test_empty_range_falls_back_to_all_candidates(self):
        n = PARAMS.samples_per_symbol
        rng = np.random.default_rng(4)
        capture = awgn(
            np.concatenate([_frame(5, 10.0), np.zeros(n, dtype=complex)]), 1.0, rng=rng
        )
        bounded, _ = align_to_window_grid(PARAMS, capture, candidate_range=(-5, -1))
        unbounded, _ = align_to_window_grid(PARAMS, capture)
        assert bounded == unbounded


class TestChunkStraddle:
    @pytest.mark.parametrize("chunk_samples", [1000, 2048])
    def test_packet_straddling_chunk_boundaries_is_decoded(self, chunk_samples):
        # Chunks smaller than a frame (3072 samples): every packet spans
        # several chunks and the detection straddle path must reassemble
        # it from the ring before dispatch.
        source = SyntheticTrafficSource(
            PARAMS,
            [periodic_node(period_s=0.3)],
            duration_s=1.0,
            payload_len=PAYLOAD_LEN,
            chunk_samples=chunk_samples,
            rng=1,
        )
        config = GatewayConfig(
            params=PARAMS, payload_len=PAYLOAD_LEN, executor="serial", seed=1
        )
        report = Gateway(config).run(source)
        sent = sorted(p.payload for p in source.transmitted)
        assert len(sent) > 0
        assert sorted(report.decoded_payloads) == sent
