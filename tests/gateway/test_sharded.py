"""End-to-end tests for the multi-channel, multi-SF sharded gateway.

Covers the tentpole's acceptance criteria: the 8-channel mixed-SF run
recovers at least the single-channel per-channel rate, packets on channel
k never decode on channel j, per-shard telemetry shows up in the report,
and per-shard RNG keys keep decodes deterministic across executors.
"""

import numpy as np
import pytest

from repro.gateway import (
    Gateway,
    GatewayConfig,
    ShardedGateway,
    ShardedGatewayConfig,
    SyntheticTrafficSource,
    shard_label,
)
from repro.mac.simulator import NodeConfig
from repro.phy.params import ChannelPlan, LoRaParams

PAYLOAD_LEN = 4


def _mixed_nodes(plan, sf_set, n_nodes, period_s=0.3, snr_db=15.0):
    """Round-robin node layout over channels and SFs (the CLI's layout)."""
    return [
        NodeConfig(
            node_id=i,
            snr_db=snr_db,
            period_s=period_s,
            channel=i % plan.n_channels,
            spreading_factor=sf_set[i % len(sf_set)],
        )
        for i in range(n_nodes)
    ]


def _run_sharded(plan, sf_set, nodes, duration_s, executor="serial", n_workers=1):
    source = SyntheticTrafficSource(
        LoRaParams(spreading_factor=sf_set[0]),
        nodes,
        duration_s=duration_s,
        payload_len=PAYLOAD_LEN,
        plan=plan,
        rng=0,
    )
    config = ShardedGatewayConfig(
        plan=plan,
        sf_set=sf_set,
        payload_len=PAYLOAD_LEN,
        executor=executor,
        n_workers=n_workers,
        seed=0,
    )
    return source, ShardedGateway(config).run(source)


def _single_channel_rate(spreading_factor, period_s=0.3, duration_s=0.6):
    """Recovery rate of the plain single-channel gateway on like traffic."""
    params = LoRaParams(spreading_factor=spreading_factor)
    source = SyntheticTrafficSource(
        params,
        [NodeConfig(node_id=0, snr_db=15.0, period_s=period_s)],
        duration_s=duration_s,
        payload_len=PAYLOAD_LEN,
        rng=0,
    )
    config = GatewayConfig(
        params=params, payload_len=PAYLOAD_LEN, executor="serial", seed=0
    )
    report = Gateway(config).run(source)
    assert source.transmitted
    return report.packets_decoded / len(source.transmitted)


@pytest.fixture(scope="module")
def mixed_run():
    """One serial 2-channel SF7+SF8 run shared by the cheap assertions."""
    plan = ChannelPlan.eu868_style(2)
    sf_set = (7, 8)
    nodes = _mixed_nodes(plan, sf_set, 2, period_s=0.25)
    return plan, sf_set, _run_sharded(plan, sf_set, nodes, duration_s=0.5)


class TestAcceptance:
    def test_eight_channel_mixed_sf_recovery(self):
        # The ISSUE's acceptance run: 8 channels, mixed SF7/SF8, one node
        # per channel.  Per-channel recovery must be at least what the
        # single-channel gateway achieves on equivalent traffic.
        plan = ChannelPlan.eu868_style(8)
        sf_set = (7, 8)
        nodes = _mixed_nodes(plan, sf_set, 8, period_s=0.3)
        source, report = _run_sharded(plan, sf_set, nodes, duration_s=0.6)

        sent = source.transmitted
        assert len(sent) >= 8  # every channel carries traffic
        assert report.packets_decoded / len(sent) >= min(
            _single_channel_rate(7), _single_channel_rate(8)
        )
        # Every decode carries its shard's channel/SF tags and landed on
        # the channel that actually transmitted.
        sf_of_channel = {cfg.channel: cfg.spreading_factor for cfg in nodes}
        decoded_payloads = set()
        for outcome in report.outcomes:
            if not outcome.crc_ok:
                continue
            assert sf_of_channel[outcome.channel] == outcome.spreading_factor
            decoded_payloads.add(outcome.payload)
        assert decoded_payloads <= {p.payload for p in sent}
        # Per-channel telemetry made it into the report.
        for channel in range(plan.n_channels):
            assert report.telemetry[f"ch{channel}.ingest.samples"]["value"] > 0


class TestChannelIsolation:
    def test_packet_on_channel_k_never_decodes_on_channel_j(self):
        # All traffic on channel 2 of a 4-channel plan: every detection
        # and every decode must stay on channel 2's shard.
        plan = ChannelPlan.eu868_style(4)
        nodes = [
            NodeConfig(
                node_id=0, snr_db=15.0, period_s=0.25, channel=2, spreading_factor=7
            )
        ]
        source, report = _run_sharded(plan, (7,), nodes, duration_s=0.5)
        assert len(source.transmitted) >= 2
        assert report.packets_decoded == len(source.transmitted)
        assert report.outcomes
        # Band-edge leakage may still *trigger* a neighbouring detector
        # (those windows fail CRC); no payload may ever decode off-channel.
        for outcome in report.outcomes:
            if outcome.crc_ok:
                assert outcome.channel == 2
        for channel in (0, 1, 3):
            assert report.shards[shard_label(channel, 7)]["decoded"] == 0


class TestShardReporting:
    def test_shards_table_covers_every_shard(self, mixed_run):
        plan, sf_set, (source, report) = mixed_run
        expected = {
            shard_label(c, sf) for c in range(plan.n_channels) for sf in sf_set
        }
        assert set(report.shards) == expected
        for row in report.shards.values():
            assert set(row) == {"detected", "decoded", "crc_failed", "dropped"}
        decoded_total = sum(row["decoded"] for row in report.shards.values())
        assert decoded_total == report.packets_decoded > 0

    def test_summary_prints_per_shard_table_and_channelize_stage(self, mixed_run):
        _, _, (_, report) = mixed_run
        text = report.summary()
        assert "per-shard recovery" in text
        assert "all-shards" in text
        assert "channelize" in text
        for label in report.shards:
            assert label in text

    def test_outcomes_decode_the_transmitted_payloads(self, mixed_run):
        _, _, (source, report) = mixed_run
        sent = {(p.channel, p.spreading_factor, p.payload) for p in source.transmitted}
        got = {
            (o.channel, o.spreading_factor, o.payload)
            for o in report.outcomes
            if o.crc_ok
        }
        assert got <= sent
        assert len(got) == report.packets_decoded > 0


class TestDeterminism:
    def test_thread_executor_matches_serial(self, mixed_run):
        # Job submission order is fixed by the scan loop and decode RNG is
        # keyed by (channel, sf, shard_seq), so a threaded pool must
        # reproduce the serial run outcome for outcome.
        plan, sf_set, (_, serial_report) = mixed_run
        nodes = _mixed_nodes(plan, sf_set, 2, period_s=0.25)
        _, threaded_report = _run_sharded(
            plan, sf_set, nodes, duration_s=0.5, executor="thread", n_workers=2
        )

        def keyed(report):
            return {
                o.job_id: (o.channel, o.spreading_factor, o.payload, o.crc_ok)
                for o in report.outcomes
            }

        assert keyed(threaded_report) == keyed(serial_report)
        assert threaded_report.shards == serial_report.shards


class TestConfigValidation:
    def test_sf_set_sorted_and_deduped(self):
        config = ShardedGatewayConfig(sf_set=(8, 7, 7))
        assert config.sf_set == (7, 8)

    def test_empty_sf_set_rejected(self):
        with pytest.raises(ValueError, match="sf_set"):
            ShardedGatewayConfig(sf_set=())

    def test_undersized_ring_rejected(self):
        with pytest.raises(ValueError, match="ring_symbols"):
            ShardedGateway(ShardedGatewayConfig(sf_set=(7, 8), ring_symbols=4))

    def test_legacy_source_rejects_channel_overrides(self):
        with pytest.raises(ValueError, match="ChannelPlan"):
            SyntheticTrafficSource(
                LoRaParams(spreading_factor=7),
                [NodeConfig(node_id=0, snr_db=15.0, channel=1)],
                duration_s=0.2,
            )
