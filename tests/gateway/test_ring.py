"""Tests for the absolute-indexed IQ ring buffer."""

import numpy as np
import pytest

from repro.gateway.ring import SampleRing


def _chunk(start: int, length: int) -> np.ndarray:
    """Complex ramp whose values encode their absolute stream index."""
    return np.arange(start, start + length, dtype=float) + 0j


class TestAppendAndView:
    def test_absolute_indexing_survives_wrap(self):
        ring = SampleRing(10)
        for a in range(0, 40, 5):
            ring.append(_chunk(a, 5))
        # After 40 samples through a 10-deep ring, the last 10 remain.
        assert ring.start == 30
        assert ring.end == 40
        np.testing.assert_array_equal(ring.view(30, 10).real, np.arange(30, 40))
        np.testing.assert_array_equal(ring.view(33, 4).real, np.arange(33, 37))

    def test_eviction_counted(self):
        ring = SampleRing(8)
        assert ring.append(_chunk(0, 6)) == 0
        assert ring.append(_chunk(6, 6)) == 4  # 12 total, 8 retained
        assert ring.start == 4

    def test_chunk_larger_than_capacity_keeps_newest(self):
        ring = SampleRing(4)
        ring.append(_chunk(0, 3))
        evicted = ring.append(_chunk(3, 10))
        assert evicted == 3 + (10 - 4)
        assert (ring.start, ring.end) == (9, 13)
        np.testing.assert_array_equal(ring.view(9, 4).real, np.arange(9, 13))

    def test_len_tracks_retained(self):
        ring = SampleRing(6)
        ring.append(_chunk(0, 4))
        assert len(ring) == 4
        ring.append(_chunk(4, 4))
        assert len(ring) == 6


class TestConsume:
    def test_consume_releases_prefix(self):
        ring = SampleRing(10)
        ring.append(_chunk(0, 10))
        ring.consume(6)
        assert ring.start == 6
        with pytest.raises(IndexError):
            ring.view(5, 2)
        np.testing.assert_array_equal(ring.view(6, 4).real, np.arange(6, 10))

    def test_consume_is_monotonic(self):
        ring = SampleRing(10)
        ring.append(_chunk(0, 10))
        ring.consume(7)
        ring.consume(3)  # going backwards is a no-op
        assert ring.start == 7

    def test_consumed_space_is_reusable(self):
        ring = SampleRing(6)
        ring.append(_chunk(0, 6))
        ring.consume(4)
        assert ring.append(_chunk(6, 4)) == 0  # no eviction: space was freed
        np.testing.assert_array_equal(ring.view(4, 6).real, np.arange(4, 10))


class TestValidation:
    def test_positive_capacity_required(self):
        with pytest.raises(ValueError, match="capacity"):
            SampleRing(0)

    def test_view_outside_span_raises(self):
        ring = SampleRing(8)
        ring.append(_chunk(0, 4))
        with pytest.raises(IndexError):
            ring.view(2, 10)  # beyond end

    def test_negative_length_raises(self):
        ring = SampleRing(8)
        with pytest.raises(ValueError, match="length"):
            ring.view(0, -1)

    def test_zero_length_view(self):
        ring = SampleRing(8)
        ring.append(_chunk(0, 4))
        assert ring.view(2, 0).size == 0
