"""Streaming-windowed traffic rendering: parity, memory bound, guard.

The capacity campaign's contract with the source: ``materialize=False``
emits a sample-exact copy of the legacy materialized stream while keeping
only the airborne frames (and their boards) resident.  Parity is pinned
at 1e-9 but is bit-exact in practice -- phases, payloads, and per-radio
draw streams replay in the same order by construction.
"""

import numpy as np
import pytest

from repro.gateway.sources import SyntheticTrafficSource
from repro.gateway.telemetry import Telemetry
from repro.mac.simulator import NodeConfig
from repro.phy.params import ChannelPlan, LoRaParams

PARAMS = LoRaParams(spreading_factor=7)


def collect(source: SyntheticTrafficSource) -> np.ndarray:
    return np.concatenate(list(source.chunks()))


def narrowband_pair(chunk_samples=4096, **kwargs):
    nodes = [
        NodeConfig(node_id=i, snr_db=12.0 + i, period_s=0.25 + 0.05 * i)
        for i in range(5)
    ]
    common = dict(
        params=PARAMS,
        nodes=nodes,
        duration_s=1.0,
        payload_len=6,
        chunk_samples=chunk_samples,
        rng=42,
        **kwargs,
    )
    eager = SyntheticTrafficSource(materialize=True, **common)
    lazy = SyntheticTrafficSource(materialize=False, **common)
    return eager, lazy


def wideband_pair(**kwargs):
    plan = ChannelPlan.eu868_style(4)
    nodes = [
        NodeConfig(
            node_id=i,
            snr_db=15.0,
            period_s=0.4,
            channel=i % 4,
            spreading_factor=(7, 8)[i % 2],
        )
        for i in range(6)
    ]
    common = dict(
        params=PARAMS,
        nodes=nodes,
        duration_s=0.6,
        payload_len=6,
        plan=plan,
        rng=7,
        **kwargs,
    )
    eager = SyntheticTrafficSource(materialize=True, **common)
    lazy = SyntheticTrafficSource(materialize=False, **common)
    return eager, lazy


class TestStreamingParity:
    def test_narrowband_streams_are_sample_exact(self):
        eager, lazy = narrowband_pair()
        a, b = collect(eager), collect(lazy)
        assert a.shape == b.shape
        assert float(np.max(np.abs(a - b))) < 1e-9

    def test_wideband_streams_are_sample_exact(self):
        eager, lazy = wideband_pair()
        a, b = collect(eager), collect(lazy)
        assert a.shape == b.shape
        assert float(np.max(np.abs(a - b))) < 1e-9

    def test_parity_holds_across_chunk_sizes(self):
        # noise is drawn per chunk (chunk-size dependent by design), so
        # the cross-chunk-size comparison pins the rendered signal alone
        eager, _ = narrowband_pair(chunk_samples=4096, noise_power=0.0)
        _, lazy = narrowband_pair(chunk_samples=1024, noise_power=0.0)
        a, b = collect(eager), collect(lazy)
        assert float(np.max(np.abs(a - b))) < 1e-9

    def test_ground_truth_matches_after_consumption(self):
        eager, lazy = narrowband_pair()
        collect(eager), collect(lazy)
        assert lazy.packets_scheduled == eager.packets_scheduled
        assert lazy.ground_truth() == eager.ground_truth()

    def test_saturated_node_resumes_radio_between_frames(self):
        # One saturated node transmits back-to-back frames, so the lazy
        # path must suspend/resume its radio many times mid-stream.
        nodes = [NodeConfig(node_id=0, snr_db=15.0, period_s=None)]
        common = dict(
            params=PARAMS, nodes=nodes, duration_s=0.5, payload_len=4, rng=3
        )
        eager = SyntheticTrafficSource(materialize=True, **common)
        lazy = SyntheticTrafficSource(materialize=False, **common)
        assert eager.packets_scheduled > 5
        a, b = collect(eager), collect(lazy)
        assert float(np.max(np.abs(a - b))) < 1e-9


class TestBoundedActiveSet:
    def test_5k_node_scenario_stays_bounded(self):
        """Regression: peak resident state is O(airborne frames), not
        O(population) -- the materializing path scaled linearly with the
        5000 nodes and would render them all up front."""
        n_nodes = 5000
        nodes = [
            NodeConfig(node_id=i, snr_db=15.0, period_s=60.0)
            for i in range(n_nodes)
        ]
        source = SyntheticTrafficSource(
            PARAMS,
            nodes,
            duration_s=1.0,
            payload_len=4,
            noise_power=0.0,
            rng=0,
            materialize=False,
            record_ground_truth=False,
            max_active_nodes=64,
        )
        for _ in source.chunks():
            pass
        # ~1/60 of the population fits a 1 s window; the resident set is
        # the handful of frames actually overlapping at any instant.
        assert 0 < source.packets_scheduled < n_nodes / 20
        assert source.active_peak <= 16
        # boards exist only for nodes that transmitted, live or dormant
        resident = len(source._radios) + len(source._dormant)
        assert resident <= source.packets_scheduled
        # metadata stayed bounded too (record_ground_truth=False)
        assert source.transmitted == []

    def test_materialized_mode_reports_population_scale_truth(self):
        # contrast case: the eager path exposes every packet up front
        nodes = [
            NodeConfig(node_id=i, snr_db=15.0, period_s=0.3) for i in range(4)
        ]
        source = SyntheticTrafficSource(
            PARAMS, nodes, duration_s=1.0, payload_len=4, rng=0
        )
        assert len(source.transmitted) == source.packets_scheduled > 0


class TestActiveSetGuard:
    def test_overflow_raises_instead_of_growing(self):
        nodes = [
            NodeConfig(node_id=i, snr_db=15.0, period_s=None) for i in range(4)
        ]
        source = SyntheticTrafficSource(
            PARAMS,
            nodes,
            duration_s=0.5,
            payload_len=4,
            rng=1,
            materialize=False,
            max_active_nodes=2,
        )
        with pytest.raises(RuntimeError, match="max_active_nodes"):
            for _ in source.chunks():
                pass

    def test_guard_validates_bound(self):
        with pytest.raises(ValueError, match="max_active_nodes"):
            SyntheticTrafficSource(
                PARAMS,
                [NodeConfig(node_id=0, snr_db=15.0)],
                duration_s=0.1,
                max_active_nodes=0,
            )


class TestSourceTelemetry:
    def test_active_peak_gauge_published(self):
        telemetry = Telemetry()
        nodes = [
            NodeConfig(node_id=i, snr_db=15.0, period_s=0.2) for i in range(3)
        ]
        source = SyntheticTrafficSource(
            PARAMS,
            nodes,
            duration_s=0.8,
            payload_len=4,
            rng=5,
            materialize=False,
            telemetry=telemetry,
        )
        for _ in source.chunks():
            pass
        assert source.packets_scheduled > 0
        assert telemetry.gauge("source.active_peak").peak == source.active_peak
        assert telemetry.counter("source.packets").value == (
            source.packets_scheduled
        )
        # the live gauge drains back down as frames retire
        assert telemetry.gauge("source.active_frames").peak >= 1
