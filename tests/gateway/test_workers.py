"""Tests for the decode worker pool: correctness, determinism, backpressure."""

import threading
import time

import numpy as np
import pytest

from repro.channel.noise import awgn
from repro.gateway.telemetry import Telemetry
from repro.gateway.workers import (
    DROP_POLICIES,
    EXECUTORS,
    DecodeJob,
    DecodeOutcome,
    DecodeWorkerPool,
    decode_packet_window,
)
from repro.hardware.radio import LoRaRadio
from repro.phy.packet import LoRaFramer
from tests.gateway.conftest import PARAMS, PAYLOAD_LEN

N_DATA = LoRaFramer(PARAMS).n_symbols_for_payload(PAYLOAD_LEN)


def _clean_window(seed: int = 0, lead: int = 0, snr_db: float = 15.0) -> tuple[DecodeJob, bytes]:
    """One noisy single-user packet window plus its true payload."""
    rng = np.random.default_rng(seed)
    radio = LoRaRadio(PARAMS, node_id=0, rng=rng)
    payload = bytes(rng.integers(0, 256, PAYLOAD_LEN, dtype=np.uint8))
    waveform, _, _ = radio.transmit_payload(payload, amplitude=10 ** (snr_db / 20))
    n = PARAMS.samples_per_symbol
    samples = np.concatenate(
        [np.zeros(lead, dtype=complex), waveform, np.zeros(2 * n, dtype=complex)]
    )
    samples = awgn(samples, 1.0, rng=rng)
    job = DecodeJob(
        job_id=seed,
        samples=samples,
        n_data_symbols=N_DATA,
        payload_len=PAYLOAD_LEN,
        start_sample=0,
        detection_score=10.0,
        created_at=time.perf_counter(),
    )
    return job, payload


class TestDecodePacketWindow:
    def test_prealigned_window_decodes(self):
        job, payload = _clean_window(seed=1)
        outcome = decode_packet_window(
            job, PARAMS, np.random.SeedSequence(0), synchronize=False
        )
        assert outcome.crc_ok
        assert outcome.payload == payload

    def test_synchronized_window_decodes(self):
        # One symbol of lead, like the gateway's cut.
        job, payload = _clean_window(seed=2, lead=PARAMS.samples_per_symbol)
        outcome = decode_packet_window(
            job, PARAMS, np.random.SeedSequence(0), synchronize=True,
            sync_search_symbols=2,
        )
        assert outcome.crc_ok
        assert outcome.payload == payload

    def test_deterministic_given_seed_and_job_id(self):
        job, _ = _clean_window(seed=3, lead=64)
        seeds = np.random.SeedSequence(42)
        a = decode_packet_window(job, PARAMS, seeds)
        b = decode_packet_window(job, PARAMS, seeds)
        assert a.payload == b.payload
        assert a.crc_ok == b.crc_ok
        assert [u.offset_bins for u in a.users] == [u.offset_bins for u in b.users]

    def test_outcome_records_timing_and_score(self):
        job, _ = _clean_window(seed=4)
        outcome = decode_packet_window(job, PARAMS, np.random.SeedSequence(0), synchronize=False)
        assert outcome.decode_s > 0
        assert outcome.queue_wait_s >= 0
        assert outcome.detection_score == 10.0
        assert outcome.n_users == len(outcome.users)


class TestPoolExecutors:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_executors_agree_with_each_other(self, executor):
        jobs = [_clean_window(seed=s, lead=32) for s in (10, 11)]
        pool = DecodeWorkerPool(
            PARAMS, n_workers=2, executor=executor, rng=5, sync_search_symbols=2
        )
        for job, _ in jobs:
            assert pool.submit(job)
        outcomes = pool.close()
        assert [o.job_id for o in outcomes] == [10, 11]
        for outcome, (_, payload) in zip(outcomes, jobs):
            assert outcome.crc_ok
            assert outcome.payload == payload

    def test_process_executor_decodes(self):
        job, payload = _clean_window(seed=12)
        pool = DecodeWorkerPool(
            PARAMS, n_workers=1, executor="process", synchronize=False, rng=0
        )
        assert pool.submit(job)
        outcomes = pool.close()
        assert len(outcomes) == 1
        assert outcomes[0].payload == payload

    def test_process_telemetry_parity_with_serial(self):
        # The per-job counters are recorded worker-side and shipped back
        # as a state delta, so the parent registry must see identical
        # totals whether the job ran in-process or in a worker process.
        def counter_totals(executor):
            pool = DecodeWorkerPool(
                PARAMS,
                n_workers=1,
                executor=executor,
                synchronize=False,
                rng=0,
            )
            for seed in (12, 13):
                job, _ = _clean_window(seed=seed)
                assert pool.submit(job)
            pool.close()
            snapshot = pool.telemetry.snapshot()
            return {
                name: state["value"]
                for name, state in snapshot.items()
                if state["type"] == "counter"
            }

        serial, process = counter_totals("serial"), counter_totals("process")
        assert serial == process
        assert serial["decode.attempts"] >= 2
        assert serial["decode.users_found"] >= 2
        assert serial["decode.crc_ok"] == 2

    def test_close_is_idempotent_and_sorted(self):
        pool = DecodeWorkerPool(PARAMS, executor="serial", synchronize=False, rng=0)
        for seed in (21, 20):
            job, _ = _clean_window(seed=seed)
            pool.submit(job)
        first = pool.close()
        assert [o.job_id for o in first] == [20, 21]
        assert pool.close() == first

    def test_submit_after_close_raises(self):
        pool = DecodeWorkerPool(PARAMS, executor="serial", rng=0)
        pool.close()
        job, _ = _clean_window(seed=0)
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit(job)

    def test_validation(self):
        with pytest.raises(ValueError, match="executor"):
            DecodeWorkerPool(PARAMS, executor="gpu")
        with pytest.raises(ValueError, match="drop_policy"):
            DecodeWorkerPool(PARAMS, drop_policy="random")
        with pytest.raises(ValueError, match="n_workers"):
            DecodeWorkerPool(PARAMS, n_workers=0)
        with pytest.raises(ValueError, match="queue_capacity"):
            DecodeWorkerPool(PARAMS, queue_capacity=0)


def _tiny_job(job_id: int) -> DecodeJob:
    return DecodeJob(
        job_id=job_id,
        samples=np.zeros(16, dtype=complex),
        n_data_symbols=N_DATA,
        payload_len=PAYLOAD_LEN,
        start_sample=job_id,
        detection_score=1.0,
        created_at=time.perf_counter(),
    )


class _GatedDecode:
    """Fake decoder whose first call blocks until released (backpressure rig)."""

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()
        self.decoded: list[int] = []
        self._lock = threading.Lock()
        self._first = True

    def __call__(self, job, params, base_seed, **kwargs) -> DecodeOutcome:
        with self._lock:
            first, self._first = self._first, False
        if first:
            self.started.set()
            assert self.release.wait(timeout=10.0)
        with self._lock:
            self.decoded.append(job.job_id)
        return DecodeOutcome(
            job_id=job.job_id,
            start_sample=job.start_sample,
            users=(),
            payload=None,
            crc_ok=False,
            queue_wait_s=0.0,
            decode_s=0.0,
            detection_score=job.detection_score,
        )


class TestDropPolicies:
    """Backpressure behavior with one gated worker and a one-slot queue."""

    def _rig(self, monkeypatch, drop_policy: str) -> tuple[DecodeWorkerPool, _GatedDecode]:
        gate = _GatedDecode()
        monkeypatch.setattr("repro.gateway.workers.decode_packet_window", gate)
        telemetry = Telemetry()
        pool = DecodeWorkerPool(
            PARAMS,
            n_workers=1,
            executor="thread",
            queue_capacity=1,
            drop_policy=drop_policy,
            telemetry=telemetry,
        )
        return pool, gate

    def test_newest_drops_incoming(self, monkeypatch):
        pool, gate = self._rig(monkeypatch, "newest")
        assert pool.submit(_tiny_job(0))
        assert gate.started.wait(timeout=10.0)  # worker holds job 0
        assert pool.submit(_tiny_job(1))        # fills the queue
        assert not pool.submit(_tiny_job(2))    # queue full -> rejected
        gate.release.set()
        outcomes = pool.close()
        assert sorted(o.job_id for o in outcomes) == [0, 1]
        assert pool.dropped == 1

    def test_oldest_evicts_queued(self, monkeypatch):
        pool, gate = self._rig(monkeypatch, "oldest")
        assert pool.submit(_tiny_job(0))
        assert gate.started.wait(timeout=10.0)
        assert pool.submit(_tiny_job(1))
        assert pool.submit(_tiny_job(2))  # evicts job 1, takes its slot
        gate.release.set()
        outcomes = pool.close()
        assert sorted(o.job_id for o in outcomes) == [0, 2]
        assert pool.dropped == 1

    def test_block_loses_nothing(self, monkeypatch):
        pool, gate = self._rig(monkeypatch, "block")
        assert pool.submit(_tiny_job(0))
        assert gate.started.wait(timeout=10.0)
        assert pool.submit(_tiny_job(1))
        unblocked = threading.Event()

        def submit_third():
            pool.submit(_tiny_job(2))  # must block until the worker drains
            unblocked.set()

        thread = threading.Thread(target=submit_third)
        thread.start()
        time.sleep(0.05)
        assert not unblocked.is_set()  # still blocked while queue is full
        gate.release.set()
        thread.join(timeout=10.0)
        assert unblocked.is_set()
        outcomes = pool.close()
        assert sorted(o.job_id for o in outcomes) == [0, 1, 2]
        assert pool.dropped == 0

    def test_constants_exported(self):
        assert set(DROP_POLICIES) == {"newest", "oldest", "block"}
        assert set(EXECUTORS) == {"serial", "thread", "process"}
