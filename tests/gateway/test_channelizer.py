"""Tests for the polyphase channelizer and the matching upconverter.

Covers the ISSUE's channelizer satellite: sub-band isolation, band-edge /
aliasing behaviour, chunk-straddle invariance, and flush semantics.
"""

import numpy as np
import pytest

from repro.gateway.channelizer import (
    DEFAULT_TAPS_PER_BRANCH,
    PolyphaseChannelizer,
    analysis_noise_gain,
    prototype_filter,
    upconvert_to_channel,
)
from repro.phy.chirp import upchirp
from repro.phy.params import ChannelPlan, LoRaParams

PLAN4 = ChannelPlan.eu868_style(4)
PLAN8 = ChannelPlan.eu868_style(8)


def _run_all(channelizer: PolyphaseChannelizer, wide: np.ndarray) -> np.ndarray:
    """Push a full capture plus flush; concatenate the per-channel outputs."""
    parts = [channelizer.push(wide), channelizer.flush()]
    return np.concatenate(parts, axis=1)


def _tone(plan: ChannelPlan, offset_hz: float, n_wide: int) -> np.ndarray:
    """A unit complex exponential at ``offset_hz`` from the wideband LO."""
    t = np.arange(n_wide) / plan.wideband_rate
    return np.exp(2j * np.pi * offset_hz * t)


def _steady_state_power(out: np.ndarray) -> np.ndarray:
    """Per-channel mean power, skipping the filter transient at both ends."""
    skip = 2 * DEFAULT_TAPS_PER_BRANCH
    body = out[:, skip:-skip]
    return np.mean(np.abs(body) ** 2, axis=1)


class TestPrototypeFilter:
    def test_unity_dc_gain_and_read_only(self):
        taps = prototype_filter(8)
        assert taps.size == 8 * DEFAULT_TAPS_PER_BRANCH
        assert taps.sum() == pytest.approx(1.0)
        assert not taps.flags.writeable
        assert prototype_filter(8) is taps  # cached

    def test_single_channel_is_passthrough(self):
        np.testing.assert_array_equal(prototype_filter(1), [1.0])

    def test_noise_gain_near_ideal_share(self):
        # Each channel should see ~1/M of the wideband noise power.
        for m in (4, 8):
            gain = analysis_noise_gain(m)
            assert gain == pytest.approx(1.0 / m, rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            prototype_filter(0)
        with pytest.raises(ValueError):
            prototype_filter(8, taps_per_branch=0)


class TestSubBandIsolation:
    @pytest.mark.parametrize("channel", [0, 3, 5, 7])
    def test_tone_lands_on_its_channel_only(self, channel):
        # A tone a few kHz inside channel k must come out of branch k at
        # ~unity gain and be deep in the noise floor everywhere else.
        offset = PLAN8.offset_hz(channel) + 3_000.0
        wide = _tone(PLAN8, offset, 4096 * 8)
        out = _run_all(PolyphaseChannelizer(PLAN8), wide)
        power = _steady_state_power(out)
        assert power[channel] == pytest.approx(1.0, rel=0.05)
        others = np.delete(power, channel)
        rejection_db = 10 * np.log10(np.max(others) / power[channel])
        assert rejection_db < -50.0

    def test_no_aliasing_into_distant_channels(self):
        # Critically sampled banks alias neighbours, not distant channels:
        # a channel-2 tone must stay >60 dB below unity on channels 5..7.
        wide = _tone(PLAN8, PLAN8.offset_hz(2) - 10_000.0, 4096 * 8)
        power = _steady_state_power(_run_all(PolyphaseChannelizer(PLAN8), wide))
        for distant in (5, 6, 7):
            assert 10 * np.log10(power[distant]) < -60.0

    def test_band_edge_tone_splits_between_neighbours(self):
        # Exactly on the edge between channels 3 and 4 the prototype's
        # -6 dB point puts roughly a quarter of the power in each.
        edge = 0.5 * (PLAN8.offset_hz(3) + PLAN8.offset_hz(4))
        wide = _tone(PLAN8, edge, 4096 * 8)
        power = _steady_state_power(_run_all(PolyphaseChannelizer(PLAN8), wide))
        assert power[3] == pytest.approx(power[4], rel=0.05)
        assert 0.1 < power[3] < 0.5
        # And the edge tone still stays out of non-adjacent channels.
        assert 10 * np.log10(np.max(np.delete(power, [3, 4]))) < -40.0


class TestStreaming:
    def test_chunk_straddle_invariance(self):
        # Any chunking of the input -- including chunks smaller than the
        # decimation factor -- must reproduce the one-shot output exactly.
        rng = np.random.default_rng(0)
        n = 4 * 4096
        wide = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        whole = _run_all(PolyphaseChannelizer(PLAN4), wide)

        chunked = PolyphaseChannelizer(PLAN4)
        parts = []
        pos = 0
        while pos < n:
            step = int(rng.integers(1, 1000))
            parts.append(chunked.push(wide[pos : pos + step]))
            pos += step
        parts.append(chunked.flush())
        np.testing.assert_array_equal(np.concatenate(parts, axis=1), whole)

    def test_flush_semantics(self):
        channelizer = PolyphaseChannelizer(PLAN4)
        channelizer.push(np.zeros(256, dtype=complex))
        tail = channelizer.flush()
        assert tail.shape[0] == 4
        with pytest.raises(RuntimeError):
            channelizer.push(np.zeros(4, dtype=complex))
        with pytest.raises(RuntimeError):
            channelizer.flush()

    def test_single_channel_plan_is_identity(self):
        plan = ChannelPlan(n_channels=1)
        rng = np.random.default_rng(1)
        chunk = rng.standard_normal(500) + 1j * rng.standard_normal(500)
        out = PolyphaseChannelizer(plan).push(chunk)
        np.testing.assert_array_equal(out, chunk.reshape(1, -1))

    def test_rejects_stepped_plans(self):
        with pytest.raises(ValueError, match="critically stacked"):
            PolyphaseChannelizer(ChannelPlan.us915_sub_band(0))


class TestUpconvertRoundTrip:
    def test_chirp_survives_synthesis_plus_analysis(self):
        # A LoRa upchirp placed on channel 5 of the plan must come back
        # out of branch 5 essentially intact (up to the bank's constant
        # group delay) and leave every other branch near-silent.
        params = PLAN8.channel_params(7)
        narrow = upchirp(params)
        wide = upconvert_to_channel(narrow, PLAN8, channel=5, start_sample=0)
        out = _run_all(PolyphaseChannelizer(PLAN8), wide)

        # Locate the integer-delay alignment by correlation, then compare.
        target = out[5]
        corr = np.abs(np.correlate(target, narrow, mode="valid"))
        delay = int(np.argmax(corr))
        recovered = target[delay : delay + narrow.size]
        similarity = np.abs(np.vdot(recovered, narrow)) / (
            np.linalg.norm(recovered) * np.linalg.norm(narrow)
        )
        assert similarity > 0.98

        # A chirp sweeps the full channel width, so its band edges leak a
        # little into the two neighbours (~-23 dB); everything further out
        # must be essentially silent.
        energy = np.sum(np.abs(out) ** 2, axis=1)
        assert np.max(energy[[4, 6]]) < 0.01 * energy[5]
        assert np.max(np.delete(energy, [4, 5, 6])) < 1e-4 * energy[5]

    def test_chunk_invariant_phase_reference(self):
        # Rendering the same waveform at start_sample=s must equal the
        # start_sample=0 rendering advanced by the mixer phase of s.
        params = LoRaParams(spreading_factor=7)
        narrow = upchirp(params)
        base = upconvert_to_channel(narrow, PLAN4, channel=1, start_sample=0)
        shifted = upconvert_to_channel(narrow, PLAN4, channel=1, start_sample=777)
        cycles = PLAN4.offset_hz(1) / PLAN4.wideband_rate
        np.testing.assert_allclose(
            shifted, base * np.exp(2j * np.pi * cycles * 777), atol=1e-12
        )

    def test_validates_channel(self):
        with pytest.raises(ValueError):
            upconvert_to_channel(np.ones(4, dtype=complex), PLAN4, channel=4)
