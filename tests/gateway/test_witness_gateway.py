"""Race-witness e2e test plus regressions for the hazards it guards.

The witness test is the dynamic half of the R009 contract: run the full
streaming gateway under the thread executor with every
:class:`DecodeWorkerPool` instrumented, then require that every shared
write observed at runtime was lock-guarded *and* statically classified
by the concurrency pass.
"""

from __future__ import annotations

import threading
from pathlib import Path

from repro.gateway import Gateway, GatewayConfig, SyntheticTrafficSource
from repro.gateway.workers import DecodeOutcome, DecodeWorkerPool
from repro.tools.analysis.witness import cross_check, install, static_verdicts
from repro.trace.recorder import TraceRecorder
from tests.gateway.conftest import PARAMS, PAYLOAD_LEN, periodic_node

SRC_ROOT = Path(__file__).resolve().parents[2] / "src"


class TestWitnessEndToEnd:
    def test_thread_executor_run_has_no_unclassified_shared_writes(self):
        # The ISSUE acceptance criterion: zero dynamically observed
        # shared writes that R009 did not classify as safe.
        source = SyntheticTrafficSource(
            PARAMS, [periodic_node()], duration_s=1.0, payload_len=PAYLOAD_LEN, rng=0
        )
        config = GatewayConfig(
            params=PARAMS,
            payload_len=PAYLOAD_LEN,
            executor="thread",
            n_workers=4,
            seed=0,
        )
        with install(DecodeWorkerPool) as observed:
            report = Gateway(config).run(source)
        assert report.decoded_payloads  # the run actually decoded traffic
        assert observed, "gateway never built a worker pool"
        verdicts = static_verdicts(
            "repro.gateway.workers.DecodeWorkerPool", [SRC_ROOT]
        )
        for pool, witness in observed:
            problems = cross_check(witness, verdicts)
            assert problems == []
            # The run must have exercised the shared path, otherwise the
            # check is vacuous.
            assert "_outcomes" in witness.shared_written_attrs()


def _dummy_outcome(job_id: int) -> DecodeOutcome:
    return DecodeOutcome(
        job_id=job_id,
        start_sample=0,
        users=(),
        payload=None,
        crc_ok=False,
        queue_wait_s=0.0,
        decode_s=0.0,
        detection_score=1.0,
    )


class _FakeFuture:
    """Minimal completed-future stand-in for _process_done."""

    def __init__(self, outcome: DecodeOutcome) -> None:
        self._outcome = outcome

    def cancelled(self) -> bool:
        return False

    def exception(self):
        return None

    def result(self) -> DecodeOutcome:
        return self._outcome


class TestFuturesTableRegression:
    def test_process_done_releases_future_entry(self):
        # Regression: completed futures used to stay in self._futures for
        # the pool's lifetime, growing the table (and every _in_flight
        # scan) without bound on long streams.
        pool = DecodeWorkerPool(PARAMS, executor="serial")
        fake = _FakeFuture(_dummy_outcome(7))
        with pool._lock:
            pool._futures[7] = fake  # type: ignore[assignment]
            pool._job_meta[7] = (0, 1.0, 0, None, None)
        pool._process_done(7, fake)  # type: ignore[arg-type]
        assert pool._futures == {}
        assert pool._job_meta == {}
        assert [o.job_id for o in pool.close()] == [7]


class TestRecorderLenRegression:
    def test_len_waits_for_writer_holding_the_lock(self):
        # Regression: __len__ used to read _packets without the lock,
        # racing concurrent worker appends.
        recorder = TraceRecorder()
        entered = threading.Event()
        results: list[int] = []

        recorder._lock.acquire()

        def reader():
            entered.set()
            results.append(len(recorder))

        thread = threading.Thread(target=reader)
        thread.start()
        entered.wait(timeout=2.0)
        thread.join(timeout=0.1)
        assert thread.is_alive(), "__len__ no longer takes the recorder lock"
        recorder._lock.release()
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert results == [0]
