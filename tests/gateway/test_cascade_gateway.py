"""Gateway-level cascade tests: parity, telemetry, Prometheus, forensics.

The parity class is the ISSUE's safety acceptance criterion made
executable: on the same synthetic traffic, the cascade gateway must
recover every payload the full-pipeline gateway recovers -- forensics
post-mortems prove no packet flips from recovered to lost, and every
packet the cascade does lose still gets exactly one drop reason.
"""

import numpy as np
import pytest

from repro.gateway import (
    Gateway,
    GatewayConfig,
    ShardedGateway,
    ShardedGatewayConfig,
    SyntheticTrafficSource,
)
from repro.gateway.telemetry import parse_prometheus_text
from repro.mac.simulator import NodeConfig
from repro.phy.params import ChannelPlan, LoRaParams
from repro.trace.export import load_trace, write_trace
from repro.trace.forensics import UNKNOWN, analyze
from tests.gateway.conftest import PARAMS, PAYLOAD_LEN


def _source():
    """The forensics bench scenario: 2 nodes, 0.5 s period over 5 s."""
    return SyntheticTrafficSource(
        PARAMS,
        [NodeConfig(node_id=i, snr_db=15.0, period_s=0.5) for i in range(2)],
        duration_s=5.0,
        payload_len=PAYLOAD_LEN,
        rng=0,
    )


def _run(decode_tier):
    config = GatewayConfig(
        params=PARAMS,
        payload_len=PAYLOAD_LEN,
        n_workers=2,
        executor="thread",
        seed=0,
        decode_tier=decode_tier,
        trace=True,
        trace_sample_rate=0.0,
        trace_always_sample_failures=True,
    )
    return Gateway(config).run(_source())


class TestConfigValidation:
    def test_gateway_config_rejects_unknown_tier(self):
        with pytest.raises(ValueError, match="decode_tier"):
            GatewayConfig(params=PARAMS, decode_tier="turbo")

    def test_sharded_config_rejects_unknown_tier(self):
        with pytest.raises(ValueError, match="decode_tier"):
            ShardedGatewayConfig(sf_set=(7,), decode_tier="turbo")

    def test_default_tier_is_full(self):
        assert GatewayConfig(params=PARAMS).decode_tier == "full"
        assert ShardedGatewayConfig(sf_set=(7,)).decode_tier == "full"


class TestCascadeParity:
    """Full vs cascade on identical traffic: nothing recovered is lost."""

    @pytest.fixture(scope="class")
    def full_report(self):
        return _run("full")

    @pytest.fixture(scope="class")
    def cascade_report(self):
        return _run("cascade")

    def test_cascade_recovers_every_full_payload(self, full_report, cascade_report):
        from collections import Counter

        full = Counter(full_report.decoded_payloads)
        cascade = Counter(cascade_report.decoded_payloads)
        lost = full - cascade
        assert not lost, f"cascade lost payloads the full path recovers: {lost}"

    def test_forensics_agree_no_packet_flips_to_lost(
        self, full_report, cascade_report, tmp_path
    ):
        reports = {}
        for name, report in (("full", full_report), ("cascade", cascade_report)):
            path = tmp_path / f"{name}.jsonl"
            write_trace(report.trace, path)
            reports[name] = analyze(load_trace(path))
        assert len(reports["cascade"].packets) == len(reports["full"].packets)
        assert reports["cascade"].n_recovered >= reports["full"].n_recovered

    def test_every_lost_packet_gets_exactly_one_reason(
        self, cascade_report, tmp_path
    ):
        path = tmp_path / "cascade.jsonl"
        write_trace(cascade_report.trace, path)
        report = analyze(load_trace(path))
        lost = [p for p in report.packets if not p.recovered]
        for packet in lost:
            assert packet.reason is not None
            assert packet.reason != UNKNOWN
        # One histogram bucket per lost packet -- no double counting.
        assert sum(report.histogram.values()) == len(lost)

    def test_summary_renders_tiered_decode_section(self, cascade_report):
        summary = cascade_report.summary()
        assert "tiered decode" in summary
        assert "escalation rate" in summary

    def test_full_summary_omits_tier_section(self, full_report):
        assert "tiered decode" not in full_report.summary()

    def test_tier_counters_account_for_every_window(self, cascade_report):
        counters = cascade_report.telemetry
        attempts = counters["decode.tier0.attempts"]["value"]
        ok = counters["decode.tier0.ok"]["value"]
        escalated = counters.get("decode.escalated", {}).get("value", 0)
        attempted = (
            cascade_report.packets_detected - cascade_report.packets_dropped
        )
        assert attempts == attempted
        # Every Tier-0 attempt either verified on the spot or escalated.
        assert ok + escalated == attempts
        # Reason counters sum to the aggregate escalation counter.
        reasons = sum(
            state["value"]
            for name, state in counters.items()
            if name.startswith("decode.escalated.")
        )
        assert reasons == escalated

    def test_decode_tier_lands_in_trace_header(self, cascade_report):
        assert cascade_report.trace is not None
        assert cascade_report.trace.header["decode_tier"] == "cascade"


class TestShardedPrometheus:
    """Sharded cascade run: per-tier counters survive the Prometheus trip."""

    @pytest.fixture(scope="class")
    def sharded(self):
        plan = ChannelPlan.eu868_style(n_channels=2)
        sf_set = (7, 8)
        nodes = [
            NodeConfig(
                node_id=i,
                snr_db=15.0,
                period_s=0.4,
                channel=i % plan.n_channels,
                spreading_factor=sf_set[i % len(sf_set)],
            )
            for i in range(4)
        ]
        source = SyntheticTrafficSource(
            LoRaParams(spreading_factor=sf_set[0]),
            nodes,
            duration_s=1.2,
            payload_len=PAYLOAD_LEN,
            plan=plan,
            rng=0,
        )
        config = ShardedGatewayConfig(
            plan=plan,
            sf_set=sf_set,
            payload_len=PAYLOAD_LEN,
            seed=0,
            decode_tier="cascade",
        )
        gateway = ShardedGateway(config)
        report = gateway.run(source)
        return gateway, report

    def test_tier0_counters_export_with_shard_labels(self, sharded):
        gateway, report = sharded
        samples = parse_prometheus_text(gateway.telemetry.prometheus())
        labelled = [
            key
            for key in samples
            if key.startswith("repro_decode_tier0_ok_total{")
        ]
        assert labelled, "no shard-labelled tier0 counters exported"
        for key in labelled:
            assert 'channel="' in key and 'sf="' in key
        assert sum(samples[key] for key in labelled) == report.packets_decoded

    def test_round_trip_values_match_snapshot(self, sharded):
        gateway, _ = sharded
        samples = parse_prometheus_text(gateway.telemetry.prometheus())
        snapshot = gateway.telemetry.snapshot()
        # Aggregate counters export unlabelled and survive verbatim.
        assert (
            samples["repro_decode_tier0_attempts_total"]
            == snapshot["decode.tier0.attempts"]["value"]
        )
        # Shard-labelled escalation counters sum to the aggregate.
        labelled = sum(
            value
            for key, value in samples.items()
            if key.startswith("repro_decode_escalated_total{")
        )
        assert labelled == snapshot["decode.escalated"]["value"]

    def test_sharded_report_tier_section(self, sharded):
        _, report = sharded
        assert "tiered decode" in report.summary()
        assert report.packets_decoded > 0
