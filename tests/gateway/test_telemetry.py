"""Tests for the gateway telemetry instruments and registry."""

import json
import threading

import pytest

from repro.gateway.telemetry import (
    DEFAULT_HISTOGRAM_CAP,
    Counter,
    DurationHistogram,
    Gauge,
    Telemetry,
    parse_prometheus_text,
)


class TestCounter:
    def test_counts_increments(self):
        counter = Counter("x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            Counter("x").inc(-1)

    def test_snapshot_shape(self):
        counter = Counter("stage.events")
        counter.inc(2)
        assert counter.snapshot() == {
            "metric": "stage.events",
            "type": "counter",
            "value": 2,
        }

    def test_thread_safety(self):
        counter = Counter("x")

        def bump():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestGauge:
    def test_tracks_level_and_peak(self):
        gauge = Gauge("depth")
        gauge.set(3)
        gauge.set(7)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.peak == 7

    def test_snapshot_shape(self):
        gauge = Gauge("depth")
        gauge.set(1.5)
        state = gauge.snapshot()
        assert state["type"] == "gauge"
        assert state["value"] == 1.5
        assert state["peak"] == 1.5


class TestDurationHistogram:
    def test_percentiles_and_stats(self):
        hist = DurationHistogram("lat")
        for v in (0.01, 0.02, 0.03, 0.04, 0.10):
            hist.record(v)
        assert hist.count == 5
        assert hist.percentile(50) == pytest.approx(0.03)
        assert hist.mean() == pytest.approx(0.04)
        assert hist.total() == pytest.approx(0.20)

    def test_empty_histogram_is_zero(self):
        hist = DurationHistogram("lat")
        assert hist.percentile(95) == 0.0
        assert hist.mean() == 0.0
        assert hist.total() == 0.0
        state = hist.snapshot()
        assert state["count"] == 0
        assert state["p50_s"] == 0.0

    def test_snapshot_has_summary_percentiles(self):
        hist = DurationHistogram("lat")
        hist.record(0.5)
        state = hist.snapshot()
        for key in ("p50_s", "p95_s", "p99_s", "mean_s", "max_s", "total_s"):
            assert key in state

    def test_time_context_manager_records(self):
        hist = DurationHistogram("lat")
        with hist.time():
            pass
        assert hist.count == 1
        assert hist.percentile(50) >= 0.0


class TestTelemetry:
    def test_instruments_created_on_demand_and_idempotent(self):
        t = Telemetry()
        assert t.counter("a") is t.counter("a")
        assert t.gauge("b") is t.gauge("b")
        assert t.histogram("c") is t.histogram("c")

    def test_kind_conflict_raises(self):
        t = Telemetry()
        t.counter("metric")
        with pytest.raises(TypeError, match="already registered"):
            t.gauge("metric")

    def test_timer_records_into_histogram(self):
        t = Telemetry()
        with t.timer("stage.seconds"):
            pass
        assert t.histogram("stage.seconds").count == 1

    def test_snapshot_keys(self):
        t = Telemetry()
        t.counter("ingest.samples").inc(10)
        t.gauge("queue.depth").set(2)
        snap = t.snapshot()
        assert snap["ingest.samples"]["value"] == 10
        assert snap["queue.depth"]["peak"] == 2

    def test_jsonl_roundtrip(self, tmp_path):
        t = Telemetry()
        t.counter("events").inc(3)
        t.histogram("lat").record(0.25)
        path = tmp_path / "telemetry.jsonl"
        t.write_jsonl(str(path))
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        by_name = {row["metric"]: row for row in rows}
        assert by_name["events"]["value"] == 3
        assert by_name["lat"]["count"] == 1

    def test_summary_renders_every_kind(self):
        t = Telemetry()
        t.counter("events").inc(1)
        t.gauge("depth").set(4)
        t.histogram("lat").record(0.002)
        text = t.summary()
        assert "events" in text
        assert "peak 4" in text
        assert "p95=" in text

    def test_summary_empty(self):
        assert Telemetry().summary() == "(no telemetry recorded)"


class TestReservoir:
    """Memory-bounded histogram: exact below the cap, sampled above it."""

    def test_exact_below_cap(self):
        hist = DurationHistogram("lat", max_samples=100)
        for i in range(100):
            hist.record(i / 1000.0)
        assert hist.count == 100
        assert hist.n_retained == 100
        assert hist.percentile(50) == pytest.approx(0.0495, abs=1e-6)

    def test_memory_bounded_above_cap(self):
        hist = DurationHistogram("lat", max_samples=64)
        for i in range(10_000):
            hist.record(i / 10_000.0)
        assert hist.n_retained == 64
        # Exact scalars survive the sampling.
        assert hist.count == 10_000
        assert hist.total() == pytest.approx(sum(i / 10_000.0 for i in range(10_000)))
        assert hist.snapshot()["max_s"] == pytest.approx(0.9999)

    def test_sampled_percentiles_statistically_sane(self):
        # Uniform [0, 1) stream: the sampled median must land near 0.5.
        # Algorithm R with a fixed per-name seed makes this deterministic.
        hist = DurationHistogram("lat", max_samples=512)
        for i in range(50_000):
            hist.record((i * 7919 % 50_000) / 50_000.0)
        assert hist.percentile(50) == pytest.approx(0.5, abs=0.1)
        assert hist.percentile(95) == pytest.approx(0.95, abs=0.1)

    def test_default_cap(self):
        assert DurationHistogram("lat").max_samples == DEFAULT_HISTOGRAM_CAP


class TestStateMerge:
    """state() / merge() carry deltas across process boundaries."""

    def test_counter_and_gauge_merge(self):
        parent, child = Telemetry(), Telemetry()
        parent.counter("events").inc(2)
        child.counter("events").inc(3)
        child.gauge("depth").set(7)
        parent.merge(child.state())
        assert parent.counter("events").value == 5
        assert parent.gauge("depth").peak == 7

    def test_histogram_merge_preserves_exact_scalars(self):
        parent, child = Telemetry(), Telemetry()
        parent.histogram("lat").record(0.1)
        child.histogram("lat").record(0.3)
        child.histogram("lat").record(0.5)
        parent.merge(child.state())
        hist = parent.histogram("lat")
        assert hist.count == 3
        assert hist.total() == pytest.approx(0.9)
        assert hist.snapshot()["max_s"] == pytest.approx(0.5)

    def test_state_roundtrip_through_json(self):
        t = Telemetry()
        t.counter("events").inc(4)
        t.histogram("lat").record(0.25)
        restored = Telemetry()
        restored.merge(json.loads(json.dumps(t.state())))
        assert restored.counter("events").value == 4
        assert restored.histogram("lat").count == 1

    def test_merge_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown"):
            Telemetry().merge({"x": {"type": "bogus", "value": 1}})


class TestPrometheus:
    def test_shard_labels_extracted(self):
        t = Telemetry()
        t.counter("ch3.sf8.decode.crc_ok").inc(5)
        text = t.prometheus()
        assert 'repro_decode_crc_ok_total{channel="3",sf="8"} 5' in text

    def test_type_lines_and_families(self):
        t = Telemetry()
        t.counter("events").inc(1)
        t.gauge("depth").set(2)
        t.histogram("decode.align_s").record(0.25)
        text = t.prometheus()
        assert "# TYPE repro_events_total counter" in text
        assert "# TYPE repro_queue_depth gauge" not in text  # not registered
        assert "# TYPE repro_decode_align_seconds summary" in text
        assert 'repro_decode_align_seconds{quantile="0.5"}' in text
        assert "repro_decode_align_seconds_count 1" in text

    def test_roundtrip_parse(self):
        t = Telemetry()
        t.counter("ch1.sf7.decode.crc_ok").inc(9)
        t.gauge("queue.depth").set(3)
        t.histogram("decode.align_s").record(0.5)
        parsed = parse_prometheus_text(t.prometheus())
        assert parsed['repro_decode_crc_ok_total{channel="1",sf="7"}'] == 9.0
        assert parsed["repro_queue_depth"] == 3.0
        assert parsed["repro_decode_align_seconds_count"] == 1.0
        assert parsed["repro_decode_align_seconds_sum"] == pytest.approx(0.5)

    def test_max_exported_as_quantile_one(self):
        t = Telemetry()
        h = t.histogram("decode.align_s")
        for value in (0.1, 0.2, 0.9):
            h.record(value)
        parsed = parse_prometheus_text(t.prometheus())
        assert parsed['repro_decode_align_seconds{quantile="1"}'] == (
            pytest.approx(0.9)
        )
        # The max rides the same summary family as the percentiles and
        # survives a text round trip alongside them.
        assert parsed['repro_decode_align_seconds{quantile="0.5"}'] <= 0.9
        assert parsed["repro_decode_align_seconds_count"] == 3.0

    def test_write_prometheus(self, tmp_path):
        t = Telemetry()
        t.counter("events").inc(2)
        path = tmp_path / "metrics.prom"
        t.write_prometheus(str(path))
        assert "repro_events_total 2" in path.read_text()
