"""Tests for the gateway's synthetic-traffic and file IQ sources."""

import numpy as np
import pytest

from repro.gateway.sources import IqFileSource, SyntheticTrafficSource
from repro.mac.simulator import NodeConfig
from tests.gateway.conftest import PARAMS, PAYLOAD_LEN, periodic_node


def _stream(source) -> np.ndarray:
    return np.concatenate(list(source.chunks()))


class TestSyntheticTrafficSource:
    def test_same_seed_same_stream(self):
        def make():
            return SyntheticTrafficSource(
                PARAMS, [periodic_node()], duration_s=0.5, payload_len=PAYLOAD_LEN, rng=7
            )

        a, b = make(), make()
        assert [p.payload for p in a.transmitted] == [p.payload for p in b.transmitted]
        np.testing.assert_array_equal(_stream(a), _stream(b))

    def test_chunk_size_does_not_change_signal(self):
        # The rendered *signal* is identical for any chunking (noise is
        # drawn per chunk, so invariance is only guaranteed noiselessly).
        streams = []
        for chunk in (512, 4096, 30000):
            source = SyntheticTrafficSource(
                PARAMS,
                [periodic_node()],
                duration_s=0.4,
                payload_len=PAYLOAD_LEN,
                chunk_samples=chunk,
                noise_power=0.0,
                rng=3,
            )
            streams.append(_stream(source))
        np.testing.assert_allclose(streams[0], streams[1])
        np.testing.assert_allclose(streams[0], streams[2])

    def test_noiseless_stream_places_waveforms_exactly(self):
        source = SyntheticTrafficSource(
            PARAMS,
            [periodic_node(period_s=0.3)],
            duration_s=0.4,
            payload_len=PAYLOAD_LEN,
            noise_power=0.0,
            rng=0,
        )
        stream = _stream(source)
        assert len(source.transmitted) == 1
        packet = source.transmitted[0]
        frame = packet.frame_samples(PARAMS)
        energy = np.abs(stream) > 0
        # The radio's timing model may delay the waveform a few samples
        # within its frame, so require bulk coverage, not every sample.
        span = energy[packet.start_sample : packet.start_sample + frame]
        assert span.sum() > 0.9 * frame
        assert not energy[: packet.start_sample].any()

    def test_periodic_schedule_spacing(self):
        source = SyntheticTrafficSource(
            PARAMS, [periodic_node(period_s=0.2)], duration_s=1.0,
            payload_len=PAYLOAD_LEN, rng=1,
        )
        starts = [p.start_sample for p in source.transmitted]
        period = int(round(0.2 * PARAMS.sample_rate))
        assert np.all(np.diff(starts) == period)

    def test_saturated_schedule_is_back_to_back(self):
        source = SyntheticTrafficSource(
            PARAMS,
            [NodeConfig(node_id=0, snr_db=15.0, period_s=None)],
            duration_s=0.5,
            payload_len=PAYLOAD_LEN,
            rng=0,
        )
        starts = [p.start_sample for p in source.transmitted]
        slot = source.transmitted[0].frame_samples(PARAMS) + PARAMS.samples_per_symbol
        assert len(starts) > 5
        assert np.all(np.diff(starts) == slot)

    def test_packets_fit_within_duration(self):
        source = SyntheticTrafficSource(
            PARAMS, [periodic_node(period_s=0.1)], duration_s=0.7,
            payload_len=PAYLOAD_LEN, rng=2,
        )
        assert source.duration_samples == int(0.7 * PARAMS.sample_rate)
        for packet in source.transmitted:
            assert packet.start_sample + packet.frame_samples(PARAMS) <= source.duration_samples

    def test_stream_length_matches_duration(self):
        source = SyntheticTrafficSource(
            PARAMS, [periodic_node()], duration_s=0.3, payload_len=PAYLOAD_LEN, rng=0
        )
        assert _stream(source).size == source.duration_samples

    def test_validation(self):
        with pytest.raises(ValueError, match="duration"):
            SyntheticTrafficSource(PARAMS, [], duration_s=0.0, rng=0)
        with pytest.raises(ValueError, match="chunk"):
            SyntheticTrafficSource(PARAMS, [], duration_s=1.0, chunk_samples=0, rng=0)


class TestIqFileSource:
    def test_npy_roundtrip(self, tmp_path):
        rng = np.random.default_rng(0)
        samples = rng.standard_normal(5000) + 1j * rng.standard_normal(5000)
        path = tmp_path / "capture.npy"
        np.save(path, samples)
        source = IqFileSource(PARAMS, str(path), chunk_samples=1234)
        chunks = list(source.chunks())
        assert all(c.size == 1234 for c in chunks[:-1])
        np.testing.assert_allclose(np.concatenate(chunks), samples)

    def test_raw_complex64_roundtrip(self, tmp_path):
        rng = np.random.default_rng(1)
        samples = (rng.standard_normal(1000) + 1j * rng.standard_normal(1000)).astype(
            np.complex64
        )
        path = tmp_path / "capture.iq"
        samples.tofile(path)
        source = IqFileSource(PARAMS, str(path))
        np.testing.assert_allclose(np.concatenate(list(source.chunks())), samples)

    def test_validation(self, tmp_path):
        path = tmp_path / "x.npy"
        np.save(path, np.zeros(4, dtype=complex))
        with pytest.raises(ValueError, match="chunk"):
            IqFileSource(PARAMS, str(path), chunk_samples=0)
