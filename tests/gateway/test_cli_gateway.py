"""Tests for the ``repro gateway`` CLI command."""

import json

import numpy as np

from repro.cli import main
from tests.gateway.conftest import PARAMS


FAST = [
    "gateway",
    "--duration", "0.6",
    "--nodes", "1",
    "--period", "0.25",
    "--payload-len", "4",
    "--seed", "0",
]


class TestGatewayCommand:
    def test_synthetic_run_prints_summary(self, capsys):
        assert main(FAST) == 0
        out = capsys.readouterr().out
        assert "synthesizing" in out
        assert "gateway run summary" in out
        assert "ground truth" in out
        assert "decoded" in out and "p95=" in out

    def test_telemetry_out_writes_jsonl(self, tmp_path, capsys):
        path = tmp_path / "telemetry.jsonl"
        assert main(FAST + ["--telemetry-out", str(path)]) == 0
        assert "telemetry written" in capsys.readouterr().out
        lines = path.read_text().splitlines()
        assert lines
        records = [json.loads(line) for line in lines]
        assert any(r["metric"] == "decode.decode_s" for r in records)

    def test_replay_from_file(self, tmp_path, capsys):
        # A short noise-only capture: the replay path must run cleanly
        # and report zero detections.
        rng = np.random.default_rng(0)
        n = 40 * PARAMS.samples_per_symbol
        capture = (rng.standard_normal(n) + 1j * rng.standard_normal(n)) / np.sqrt(2)
        path = tmp_path / "capture.npy"
        np.save(path, capture.astype(complex))
        assert main(["gateway", "--input", str(path), "--payload-len", "4"]) == 0
        out = capsys.readouterr().out
        assert "replaying" in out
        assert "gateway run summary" in out

    def test_workers_and_executor_flags(self, capsys):
        assert main(FAST + ["--workers", "2", "--executor", "thread"]) == 0
        assert "gateway run summary" in capsys.readouterr().out

    def test_metrics_out_writes_prometheus(self, tmp_path, capsys):
        path = tmp_path / "metrics.prom"
        assert main(FAST + ["--metrics-out", str(path)]) == 0
        assert "metrics written" in capsys.readouterr().out
        text = path.read_text()
        assert "# TYPE repro_decode_crc_ok_total counter" in text

    def test_trace_out_then_forensics(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(FAST + ["--trace-out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "trace written" in out
        assert "repro forensics" in out  # the follow-up hint
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows[0]["kind"] == "header"
        assert any(row["kind"] == "outcome" for row in rows)

        assert main(["forensics", str(path)]) == 0
        report = capsys.readouterr().out
        assert "packet forensics:" in report
        assert "RECOVERED" in report

    def test_forensics_json_flag(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(FAST + ["--trace-out", str(path)]) == 0
        capsys.readouterr()
        assert main(["forensics", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["packets"]

    def test_trace_sample_rate_zero_on_clean_run(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(
            FAST + ["--trace-out", str(path), "--trace-sample-rate", "0.0"]
        ) == 0
        capsys.readouterr()
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        # Clean traffic at rate 0: outcome rows, but no retained span trees.
        assert any(row["kind"] == "outcome" for row in rows)
        assert not any(row["kind"] == "packet" for row in rows)


class TestMultiChannelCommand:
    MULTI = [
        "gateway",
        "--channels", "2",
        "--sf-set", "7,8",
        "--nodes", "2",
        "--duration", "0.5",
        "--period", "0.25",
        "--payload-len", "4",
        "--seed", "0",
    ]

    def test_sharded_run_prints_per_shard_table(self, capsys):
        assert main(self.MULTI) == 0
        out = capsys.readouterr().out
        assert "wideband traffic" in out
        assert "2 channel(s)" in out and "SF set 7,8" in out
        assert "per-shard recovery" in out
        assert "ch0.sf7" in out and "ch1.sf8" in out
        assert "all-shards" in out

    def test_sf_set_alone_triggers_sharded_mode(self, capsys):
        args = self.MULTI[:1] + self.MULTI[3:]  # drop "--channels 2"
        assert main(args) == 0
        assert "1 channel(s)" in capsys.readouterr().out

    def test_replay_input_is_single_channel_only(self, tmp_path, capsys):
        path = tmp_path / "capture.npy"
        np.save(path, np.zeros(16, dtype=complex))
        assert main(self.MULTI + ["--input", str(path)]) == 2
        assert "single-channel only" in capsys.readouterr().err

    def test_sf_set_validation(self):
        import pytest

        with pytest.raises(SystemExit):
            main(FAST + ["--sf-set", "7,x"])
