"""Tests for the CLI and the ASCII plotting helpers."""

import numpy as np
import pytest

from repro.cli import EXPERIMENTS, main
from repro.utils.ascii_plot import ascii_bars, ascii_cdf, ascii_line


class TestAsciiPlots:
    def test_line_renders(self):
        chart = ascii_line(np.sin(np.linspace(0, 6, 100)), label="sine")
        assert "sine" in chart
        assert "*" in chart

    def test_line_empty(self):
        assert ascii_line(np.array([])) == "(empty series)"

    def test_line_constant_series(self):
        chart = ascii_line(np.ones(10))
        assert "*" in chart  # no div-by-zero on flat data

    def test_bars_scaled_to_peak(self):
        chart = ascii_bars(["a", "bb"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_bars_validation(self):
        with pytest.raises(ValueError, match="align"):
            ascii_bars(["a"], [1.0, 2.0])

    def test_bars_empty(self):
        assert ascii_bars([], []) == "(no bars)"

    def test_cdf_monotone_render(self):
        chart = ascii_cdf(np.random.default_rng(0).uniform(size=200), label="u")
        assert "u" in chart


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_unknown(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_run_fast_experiment(self, capsys):
        assert main(["run", "fig9b"]) == 0
        out = capsys.readouterr().out
        assert "max distance" in out
        assert "2644" in out or "264" in out

    def test_run_with_chart(self, capsys):
        assert main(["run", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "resolution error" in out

    def test_every_registered_experiment_callable(self):
        for name, (fn, description) in EXPERIMENTS.items():
            assert callable(fn)
            assert description


class TestReportCommand:
    def test_report_writes_files(self, tmp_path, capsys):
        assert main(["report", str(tmp_path), "fig3", "fig9b"]) == 0
        assert (tmp_path / "fig3.txt").exists()
        assert (tmp_path / "fig3.csv").exists()
        assert (tmp_path / "INDEX.md").exists()
        index = (tmp_path / "INDEX.md").read_text()
        assert "fig3" in index and "fig9b" in index

    def test_report_unknown_experiment(self, tmp_path, capsys):
        assert main(["report", str(tmp_path), "nope"]) == 2

    def test_report_csv_parses(self, tmp_path):
        import csv

        main(["report", str(tmp_path), "fig9b"])
        with open(tmp_path / "fig9b.csv") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 3
        assert "max_distance_m" in rows[0]
