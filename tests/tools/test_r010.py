"""R010 fixtures: determinism hazards in decode paths."""

from __future__ import annotations

from pathlib import Path

from repro.tools.analysis.engine import lint_source

PATH = Path("src/repro/core/example.py")


def r010(source: str, path: Path = PATH):
    return [d for d in lint_source(source, path) if d.code == "R010"]


class TestStrayRng:
    def test_random_random_call(self):
        source = "import random\nx = random.random()\n"
        found = r010(source)
        assert [d.line for d in found] == [2]
        assert "random.random" in found[0].message

    def test_random_constructor(self):
        source = "import random\nrng = random.Random(7)\n"
        assert len(r010(source)) == 1

    def test_from_import_alias_dodging(self):
        source = "from random import Random as MkRng\nrng = MkRng(7)\n"
        found = r010(source)
        assert len(found) == 1
        assert "MkRng" in found[0].message

    def test_module_alias_dodging(self):
        source = "import random as rnd\nx = rnd.shuffle(items)\n"
        assert len(r010(source)) == 1

    def test_derive_rng_is_fine(self):
        source = (
            "from repro.utils.rng import derive_rng\n"
            "rng = derive_rng(0, 1, 2)\n"
        )
        assert r010(source) == []

    def test_rng_plumbing_module_is_exempt(self):
        source = "import random\nx = random.Random(0)\n"
        assert r010(source, Path("src/repro/utils/rng.py")) == []

    def test_local_name_random_not_confused(self):
        # A locally defined `random` object is not the stdlib module.
        source = "random = make_jitterer()\nx = random.random()\n"
        assert r010(source) == []


class TestIdKeyedSort:
    def test_sorted_key_id(self):
        source = "out = sorted(items, key=id)\n"
        found = r010(source)
        assert len(found) == 1
        assert "id()-keyed" in found[0].message

    def test_list_sort_lambda_id(self):
        source = "items.sort(key=lambda x: (x.rank, id(x)))\n"
        assert len(r010(source)) == 1

    def test_stable_key_is_fine(self):
        source = "out = sorted(items, key=lambda x: x.key)\n"
        assert r010(source) == []


class TestSetIteration:
    def test_for_over_set_call(self):
        source = "for x in set(items):\n    emit(x)\n"
        found = r010(source)
        assert [d.line for d in found] == [1]
        assert "unordered set" in found[0].message

    def test_for_over_set_literal(self):
        source = "for x in {1, 2, 3}:\n    emit(x)\n"
        assert len(r010(source)) == 1

    def test_list_comprehension_over_set(self):
        source = "out = [f(x) for x in set(items)]\n"
        assert len(r010(source)) == 1

    def test_dict_comprehension_over_set(self):
        source = "out = {x: 1 for x in set(items)}\n"
        assert len(r010(source)) == 1

    def test_list_materialization(self):
        source = "out = list(frozenset(items))\n"
        assert len(r010(source)) == 1

    def test_alias_dodging_through_local_name(self):
        source = "seen = set(items)\nfor x in seen:\n    emit(x)\n"
        found = r010(source)
        assert [d.line for d in found] == [2]

    def test_sorted_sanitizes(self):
        source = "for x in sorted(set(items)):\n    emit(x)\n"
        assert r010(source) == []

    def test_sorted_generator_over_set_sanitized(self):
        source = "out = sorted(f(x) for x in set(items))\n"
        assert r010(source) == []

    def test_order_insensitive_reduction_is_fine(self):
        source = "total = sum(f(x) for x in set(items))\n"
        assert r010(source) == []

    def test_set_to_set_is_fine(self):
        source = "out = {f(x) for x in set(items)}\n"
        assert r010(source) == []

    def test_membership_not_flagged(self):
        source = "seen = set(items)\nok = x in seen\n"
        assert r010(source) == []

    def test_ambiguous_rebinding_not_flagged(self):
        # `seen` is also bound to a list; don't guess.
        source = (
            "seen = set(items)\n"
            "seen = order(seen)\n"
            "for x in seen:\n"
            "    emit(x)\n"
        )
        assert r010(source) == []


class TestScopeAndNoqa:
    def test_tools_package_is_exempt(self):
        source = "for x in set(items):\n    emit(x)\n"
        assert r010(source, Path("src/repro/tools/analysis/example.py")) == []

    def test_noqa_with_justification_suppresses(self):
        source = (
            "import random\n"
            "rng = random.Random(0)  # noqa: R010 -- seeded from metric name\n"
        )
        assert r010(source) == []

    def test_noqa_on_multiline_statement(self):
        source = (
            "out = list(\n"
            "    frozenset(items)\n"
            ")  # noqa: R010\n"
        )
        assert r010(source) == []
