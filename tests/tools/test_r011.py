"""R011 fixtures: implicit complex64 -> complex128 upcasts in hot kernels."""

from __future__ import annotations

from pathlib import Path

from repro.tools.analysis.engine import lint_source

PATH = Path("src/repro/core/example.py")


def r011(source: str, path: Path = PATH):
    return [d for d in lint_source(source, path) if d.code == "R011"]


def kernel(body: str) -> str:
    indented = "\n".join(f"    {line}" if line else "" for line in body.splitlines())
    return f'import numpy as np\n\ndef kernel(x):\n    """Fixture."""\n{indented}\n'


class TestPositive:
    def test_complex64_times_float64_scalar(self):
        source = kernel(
            "iq = np.zeros(8, dtype=np.complex64)\n"
            "scale = np.float64(0.5)\n"
            "return iq * scale"
        )
        found = r011(source)
        assert len(found) == 1
        assert "complex64 -> complex128" in found[0].message

    def test_complex64_plus_default_float64_array(self):
        # np.zeros with no dtype is float64: mixing it in upcasts.
        source = kernel(
            "iq = np.ones(8, dtype=np.complex64)\n"
            "bias = np.zeros(8)\n"
            "return iq + bias"
        )
        assert len(r011(source)) == 1

    def test_complex64_times_complex128(self):
        source = kernel(
            "iq = np.zeros(8, dtype=np.complex64)\n"
            "ref = np.zeros(8, dtype=np.complex128)\n"
            "return iq * ref"
        )
        assert len(r011(source)) == 1

    def test_fft_output_mixing_back_into_complex64(self):
        # np.fft always returns complex128.
        source = kernel(
            "iq = np.zeros(8, dtype=np.complex64)\n"
            "spec = np.fft.fft(iq)\n"
            "return iq * spec"
        )
        assert len(r011(source)) == 1

    def test_augassign_upcast(self):
        source = kernel(
            "iq = np.zeros(8, dtype=np.complex64)\n"
            "iq *= np.float64(2.0)\n"
            "return iq"
        )
        assert len(r011(source)) == 1

    def test_dtype_via_string(self):
        source = kernel(
            'iq = np.zeros(8, dtype="complex64")\n'
            "scale = np.linspace(0.0, 1.0, 8)\n"
            "return iq * scale"
        )
        assert len(r011(source)) == 1

    def test_astype_chain(self):
        source = kernel(
            "iq = x.astype(np.complex64)\n"
            "w = np.ones(8)\n"
            "return iq * w"
        )
        assert len(r011(source)) == 1


class TestNegative:
    def test_weak_python_scalar_is_fine(self):
        # NEP 50: python floats adopt the array dtype.
        source = kernel(
            "iq = np.zeros(8, dtype=np.complex64)\n"
            "return iq * 0.5"
        )
        assert r011(source) == []

    def test_float32_operand_is_fine(self):
        source = kernel(
            "iq = np.zeros(8, dtype=np.complex64)\n"
            "w = np.ones(8, dtype=np.float32)\n"
            "return iq * w"
        )
        assert r011(source) == []

    def test_explicit_cast_is_fine(self):
        source = kernel(
            "iq = np.zeros(8, dtype=np.complex64)\n"
            "bias = np.zeros(8).astype(np.float32)\n"
            "return iq + bias"
        )
        assert r011(source) == []

    def test_double_precision_pipeline_is_fine(self):
        source = kernel(
            "iq = np.zeros(8, dtype=np.complex128)\n"
            "w = np.ones(8)\n"
            "return iq * w"
        )
        assert r011(source) == []

    def test_unknown_dtype_never_flags(self):
        source = kernel(
            "iq = load_capture(x)\n"
            "w = np.ones(8)\n"
            "return iq * w"
        )
        assert r011(source) == []


class TestScopeAliasNoqa:
    def test_gateway_module_out_of_scope(self):
        source = kernel(
            "iq = np.zeros(8, dtype=np.complex64)\n"
            "return iq * np.float64(0.5)"
        )
        assert r011(source, Path("src/repro/gateway/example.py")) == []

    def test_numpy_alias_dodging(self):
        source = (
            "import numpy as xp\n"
            "\n"
            "def kernel(x):\n"
            '    """Fixture."""\n'
            "    iq = xp.zeros(8, dtype=xp.complex64)\n"
            "    return iq * xp.float64(0.5)\n"
        )
        assert len(r011(source)) == 1

    def test_noqa_suppresses(self):
        source = kernel(
            "iq = np.zeros(8, dtype=np.complex64)\n"
            "return iq * np.float64(0.5)  # noqa: R011 -- precision bump intended"
        )
        assert r011(source) == []
