"""Unit tests for the runtime race witness."""

from __future__ import annotations

import threading
from pathlib import Path

from repro.tools.analysis import witness as witness_mod
from repro.tools.analysis.witness import (
    LockProxy,
    attach,
    cross_check,
    install,
    static_verdicts,
)

RACY_SOURCE = """\
import threading

class Racy:
    def __init__(self):
        self._lock = threading.Lock()
        self._log = []
        threading.Thread(target=self._worker).start()

    def _worker(self):
        self._log.append(1)  # noqa: R009 -- fixture: deliberate race
"""


class Racy:
    def __init__(self):
        self._lock = threading.Lock()
        self._log = []

    def poke(self):
        self._log.append(threading.get_ident())

    def poke_guarded(self):
        with self._lock:
            self._log.append(threading.get_ident())


def run_in_thread(fn):
    thread = threading.Thread(target=fn)
    thread.start()
    thread.join()


class TestEventLog:
    def test_rebind_and_mutate_events_recorded(self):
        obj = Racy()
        witness = attach(obj)
        obj._log.append(1)
        obj.fresh = 2
        kinds = [(e.attr, e.kind) for e in witness.write_events()]
        assert ("_log", "mutate") in kinds
        assert ("fresh", "rebind") in kinds

    def test_sequence_is_strictly_increasing(self):
        obj = Racy()
        witness = attach(obj)
        for _ in range(5):
            obj.poke()
        seqs = [e.seq for e in witness.events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_lock_proxy_tracks_held_set(self):
        obj = Racy()
        witness = attach(obj)
        assert isinstance(obj._lock, LockProxy)
        obj.poke_guarded()
        mutates = [e for e in witness.write_events() if e.kind == "mutate"]
        assert mutates and mutates[0].locks == frozenset({"_lock"})

    def test_unguarded_write_has_empty_lock_set(self):
        obj = Racy()
        witness = attach(obj)
        obj.poke()
        mutates = [e for e in witness.write_events() if e.kind == "mutate"]
        assert mutates[0].locks == frozenset()


class TestSharedWriteDetection:
    def test_single_thread_writes_are_not_shared(self):
        obj = Racy()
        witness = attach(obj)
        obj.poke()
        assert witness.shared_written_attrs() == []
        assert witness.unguarded_shared_writes() == []

    def test_cross_thread_unguarded_write_is_caught(self):
        obj = Racy()
        witness = attach(obj)
        run_in_thread(obj.poke)
        assert witness.shared_written_attrs() == ["_log"]
        unguarded = witness.unguarded_shared_writes()
        assert unguarded and unguarded[0].attr == "_log"

    def test_cross_thread_guarded_write_is_clean(self):
        obj = Racy()
        witness = attach(obj)
        run_in_thread(obj.poke_guarded)
        assert witness.shared_written_attrs() == ["_log"]
        assert witness.unguarded_shared_writes() == []


class TestCrossCheck:
    def test_guarded_write_with_guarded_verdict_passes(self):
        obj = Racy()
        witness = attach(obj)
        run_in_thread(obj.poke_guarded)
        assert cross_check(witness, {"_log": "guarded", "_lock": "lock"}) == []

    def test_unguarded_write_fails_even_if_classified(self):
        obj = Racy()
        witness = attach(obj)
        run_in_thread(obj.poke)
        problems = cross_check(witness, {"_log": "guarded"})
        assert any("unguarded shared write" in p for p in problems)

    def test_statically_invisible_write_fails(self):
        # Static analysis thought the attr was main-thread-only.
        obj = Racy()
        witness = attach(obj)
        run_in_thread(obj.poke_guarded)
        problems = cross_check(witness, {"_log": "unshared"})
        assert any("statically unclassified" in p for p in problems)

    def test_suppressed_verdict_is_accepted(self):
        obj = Racy()
        witness = attach(obj)
        run_in_thread(obj.poke_guarded)
        assert cross_check(witness, {"_log": "suppressed"}) == []


class TestStaticVerdicts:
    def test_verdicts_from_fixture_tree(self, tmp_path):
        (tmp_path / "fixture.py").write_text(RACY_SOURCE)
        verdicts = static_verdicts("fixture.Racy", [tmp_path])
        assert verdicts["_lock"] == "lock"
        # The deliberate race carries a noqa justification, so the
        # static side reports it as suppressed, not unguarded.
        assert verdicts["_log"] == "suppressed"


class TestInstall:
    def test_install_wraps_and_restores_init(self):
        original_init = Racy.__init__
        with install(Racy) as observed:
            obj = Racy()
            obj.poke()
        assert Racy.__init__ is original_init
        assert len(observed) == 1
        instance, witness = observed[0]
        assert instance is obj
        assert witness.write_events()

    def test_install_catches_race_in_scope(self):
        with install(Racy) as observed:
            obj = Racy()
            run_in_thread(obj.poke)
        _, witness = observed[0]
        assert witness.unguarded_shared_writes()


class TestModuleIsClean:
    def test_witness_module_passes_its_own_linter(self):
        from repro.tools.analysis.engine import lint_paths

        path = Path(witness_mod.__file__)
        assert lint_paths([path]) == []
