"""R013 fixtures: resource accounting confined to ``repro/profile/``.

``tracemalloc``, ``resource`` and ``time.process_time`` perturb what
they measure (allocation tracing slows the traced code several-fold),
so every use routes through :mod:`repro.profile.resources`, where the
bracketing is explicit and auditable.
"""

from __future__ import annotations

from pathlib import Path

from repro.tools.analysis.engine import lint_source

PATH = Path("src/repro/gateway/example.py")
PROFILE_PATH = Path("src/repro/profile/example.py")


def r013(source: str, path: Path = PATH):
    return [d for d in lint_source(source, path) if d.code == "R013"]


class TestPositive:
    def test_process_time_call(self):
        source = (
            "import time\n"
            "def cost():\n"
            "    return time.process_time()\n"
        )
        found = r013(source)
        assert len(found) == 1
        assert "repro.profile.resources" in found[0].message

    def test_process_time_from_import_call(self):
        source = (
            "from time import process_time\n"
            "def cost():\n"
            "    return process_time()\n"
        )
        assert len(r013(source)) == 1

    def test_tracemalloc_import_and_call(self):
        source = (
            "import tracemalloc\n"
            "def trace():\n"
            "    tracemalloc.start()\n"
        )
        # Both the import and the call are flagged: removing the call
        # should not leave a silent dormant import behind.
        assert len(r013(source)) == 2

    def test_resource_from_import(self):
        source = "from resource import getrusage\n"
        assert len(r013(source)) == 1

    def test_core_files_are_in_scope_too(self):
        source = (
            "import time\n"
            "def cost():\n"
            "    return time.process_time()\n"
        )
        assert len(r013(source, Path("src/repro/core/example.py"))) == 1


class TestNegative:
    def test_profile_package_is_exempt(self):
        source = (
            "import time\n"
            "import tracemalloc\n"
            "def cost():\n"
            "    tracemalloc.start()\n"
            "    return time.process_time()\n"
        )
        assert r013(source, PROFILE_PATH) == []

    def test_plain_time_calls_are_fine(self):
        source = (
            "import time\n"
            "def now():\n"
            "    return time.time()\n"
        )
        assert r013(source) == []

    def test_local_resource_variable_not_flagged(self):
        # A local name `resource` is not the stdlib module; only the
        # import binding makes the chain resolve.
        source = (
            "def use(resource):\n"
            "    return resource.close()\n"
        )
        assert r013(source) == []

    def test_noqa_suppresses(self):
        source = (
            "import time\n"
            "def cost():\n"
            "    return time.process_time()  # noqa: R013 -- bootstrap probe\n"
        )
        assert r013(source) == []
