"""R009 fixtures: lock discipline for thread-shared class state."""

from __future__ import annotations

from pathlib import Path

from repro.tools.analysis.engine import lint_source

PATH = Path("src/repro/gateway/example.py")


def codes(source: str, path: Path = PATH) -> list[str]:
    return sorted(d.code for d in lint_source(source, path))


def diags(source: str, path: Path = PATH):
    return [d for d in lint_source(source, path) if d.code == "R009"]


GUARDED_POOL = """
import threading

class Pool:
    def __init__(self):
        self._lock = threading.Lock()
        self._results = []
        self._thread = threading.Thread(target=self._worker)

    def _worker(self):
        with self._lock:
            self._results.append(1)

    def drain(self):
        with self._lock:
            out = list(self._results)
            self._results = []
        return out
"""

UNGUARDED_POOL = """
import threading

class Pool:
    def __init__(self):
        self._lock = threading.Lock()
        self._results = []
        self._thread = threading.Thread(target=self._worker)

    def _worker(self):
        self._results.append(1)
"""


class TestPositive:
    def test_unguarded_append_reachable_from_thread_entry(self):
        found = diags(UNGUARDED_POOL)
        assert len(found) == 1
        assert found[0].line == 11
        assert "_results" in found[0].message
        assert "with self._lock" in found[0].message

    def test_unguarded_rebind_flagged(self):
        source = """
import threading

class Pool:
    def __init__(self):
        self._lock = threading.Lock()
        self._state = 0
        threading.Thread(target=self._worker).start()

    def _worker(self):
        self._state = self._state + 1
"""
        found = diags(source)
        assert [d.line for d in found] == [11]

    def test_main_thread_writer_of_shared_attr_also_flagged(self):
        # The worker reads under lock, but the main-thread writer skips
        # the lock: still a race.
        source = """
import threading

class Pool:
    def __init__(self):
        self._lock = threading.Lock()
        self._jobs = {}
        threading.Thread(target=self._worker).start()

    def _worker(self):
        with self._lock:
            self._jobs.clear()

    def submit(self, jid, job):
        self._jobs[jid] = job
"""
        found = diags(source)
        assert [d.line for d in found] == [15]

    def test_callback_entry_via_add_done_callback_lambda(self):
        source = """
import threading

class Pool:
    def __init__(self):
        self._lock = threading.Lock()
        self._done = []

    def submit(self, future):
        future.add_done_callback(lambda f: self._on_done(f))

    def _on_done(self, future):
        self._done.append(future)
"""
        found = diags(source)
        assert [d.line for d in found] == [13]

    def test_inconsistent_lock_order(self):
        source = """
import threading

class Pool:
    def __init__(self):
        self._alock = threading.Lock()
        self._block = threading.Lock()

    def forward(self):
        with self._alock:
            with self._block:
                pass

    def backward(self):
        with self._block:
            with self._alock:
                pass
"""
        found = diags(source)
        assert len(found) == 2
        assert all("lock acquisition order" in d.message for d in found)
        assert sorted(d.line for d in found) == [11, 16]


class TestNegative:
    def test_guarded_pool_is_clean(self):
        assert diags(GUARDED_POOL) == []

    def test_no_thread_entry_means_no_sharing(self):
        # Same unguarded mutation, but nothing ever runs on a thread.
        source = """
class Accumulator:
    def __init__(self):
        self._results = []

    def add(self, x):
        self._results.append(x)
"""
        assert diags(source) == []

    def test_synchronized_queue_is_exempt(self):
        source = """
import queue
import threading

class Pool:
    def __init__(self):
        self._queue = queue.Queue()
        threading.Thread(target=self._worker).start()

    def _worker(self):
        self._queue.put(1)

    def submit(self, job):
        self._queue.put(job)
"""
        assert diags(source) == []

    def test_private_helper_called_under_lock_everywhere(self):
        # _offer never takes the lock itself; every caller holds it.
        source = """
import threading

class Histogram:
    def __init__(self):
        self._lock = threading.Lock()
        self._values = []
        threading.Thread(target=self._drain).start()

    def _offer(self, value):
        self._values.append(value)

    def record(self, value):
        with self._lock:
            self._offer(value)

    def _drain(self):
        with self._lock:
            self._offer(0)
"""
        assert diags(source) == []

    def test_consistent_lock_order_is_clean(self):
        source = """
import threading

class Pool:
    def __init__(self):
        self._alock = threading.Lock()
        self._block = threading.Lock()

    def one(self):
        with self._alock:
            with self._block:
                pass

    def two(self):
        with self._alock:
            with self._block:
                pass
"""
        assert diags(source) == []


class TestAliasDodging:
    def test_threading_module_alias(self):
        source = UNGUARDED_POOL.replace(
            "import threading", "import threading as t"
        ).replace("threading.Thread", "t.Thread").replace(
            "threading.Lock", "t.Lock"
        )
        assert len(diags(source)) == 1

    def test_from_import_thread_alias(self):
        source = """
from threading import Lock, Thread as Worker

class Pool:
    def __init__(self):
        self._lock = Lock()
        self._results = []
        self._thread = Worker(target=self._worker)

    def _worker(self):
        self._results.append(1)
"""
        assert len(diags(source)) == 1

    def test_cross_class_reachability_through_attribute(self):
        # The unguarded mutation lives in a *different* class; only the
        # attribute-type edge connects it to the thread entry.
        source = """
import threading

class Sink:
    def __init__(self):
        self._items = []

    def push(self, item):
        self._items.append(item)

class Pool:
    def __init__(self, sink: Sink):
        self._sink = sink
        threading.Thread(target=self._worker).start()

    def _worker(self):
        self._sink.push(1)
"""
        found = diags(source)
        assert len(found) == 1
        assert found[0].line == 9
        assert "Sink.push" in found[0].message


class TestNoqa:
    def test_noqa_suppresses_r009(self):
        source = UNGUARDED_POOL.replace(
            "self._results.append(1)",
            "self._results.append(1)  # noqa: R009",
        )
        assert diags(source) == []

    def test_noqa_for_other_code_does_not_suppress(self):
        source = UNGUARDED_POOL.replace(
            "self._results.append(1)",
            "self._results.append(1)  # noqa: R010",
        )
        assert len(diags(source)) == 1
