"""Engine-layer tests: module model, import resolution, logical-line noqa."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.tools.analysis.engine import build_module_model, lint_source
from repro.tools.analysis.model import ImportMap, ModuleModel, module_name_for


def model_of(source: str, path: str = "src/repro/core/example.py") -> ModuleModel:
    model, error = build_module_model(source, Path(path))
    assert error is None, error
    assert model is not None
    return model


class TestImportMap:
    def test_plain_import(self):
        model = model_of("import numpy\n")
        assert model.imports.resolve(("numpy", "fft", "fft")) == (
            "numpy",
            "fft",
            "fft",
        )

    def test_aliased_import(self):
        model = model_of("import numpy as np\n")
        assert model.imports.resolve(("np", "random", "seed")) == (
            "numpy",
            "random",
            "seed",
        )

    def test_submodule_alias(self):
        model = model_of("import numpy.random as nr\n")
        assert model.imports.resolve(("nr", "default_rng")) == (
            "numpy",
            "random",
            "default_rng",
        )

    def test_from_import_with_alias(self):
        model = model_of("from numpy.random import default_rng as mk\n")
        assert model.imports.resolve(("mk",)) == ("numpy", "random", "default_rng")

    def test_relative_import_resolves_against_package(self):
        model = model_of(
            "from ..utils.rng import derive_rng\n",
            path="src/repro/gateway/workers.py",
        )
        assert model.imports.resolve(("derive_rng",)) == (
            "repro",
            "utils",
            "rng",
            "derive_rng",
        )

    def test_unknown_names_stay_local(self):
        assert ImportMap().resolve(("local_helper",)) is None


class TestModuleNames:
    def test_src_layout(self):
        assert module_name_for(Path("src/repro/core/sic.py")) == "repro.core.sic"

    def test_package_init(self):
        assert module_name_for(Path("src/repro/core/__init__.py")) == "repro.core"

    def test_bare_fixture_path(self):
        assert module_name_for(Path("/tmp/x/fixture.py")) == "fixture"


class TestLogicalLineNoqa:
    def test_noqa_on_last_physical_line_of_wrapped_call(self):
        # The diagnostic anchors to the call's first line; the noqa sits
        # two lines down, still inside the same logical statement.
        source = (
            "import numpy as np\n"
            "x = np.random.normal(\n"
            "    0.0, 1.0, size=8,\n"
            ")  # noqa: R001\n"
        )
        assert lint_source(source, Path("src/repro/core/x.py")) == []

    def test_noqa_on_first_line_still_works(self):
        source = (
            "import numpy as np\n"
            "x = np.random.normal(  # noqa: R001\n"
            "    0.0, 1.0, size=8,\n"
            ")\n"
        )
        assert lint_source(source, Path("src/repro/core/x.py")) == []

    def test_noqa_on_neighbouring_statement_does_not_leak(self):
        source = (
            "import numpy as np\n"
            "y = 1  # noqa: R001\n"
            "x = np.random.normal(0.0, 1.0, size=8)\n"
        )
        diagnostics = lint_source(source, Path("src/repro/core/x.py"))
        assert [d.code for d in diagnostics] == ["R001"]

    def test_wrong_code_does_not_suppress(self):
        source = (
            "import numpy as np\n"
            "x = np.random.normal(\n"
            "    0.0, 1.0, size=8,\n"
            ")  # noqa: R005\n"
        )
        diagnostics = lint_source(source, Path("src/repro/core/x.py"))
        assert [d.code for d in diagnostics] == ["R001"]

    def test_bare_noqa_covers_all_codes_across_the_statement(self):
        source = (
            "import numpy as np\n"
            "x = np.random.normal(\n"
            "    0.0, 1.0, size=8,\n"
            ")  # noqa\n"
        )
        assert lint_source(source, Path("src/repro/core/x.py")) == []


class TestSingleParse:
    def test_model_tree_is_shared_across_rules(self):
        model = model_of("import numpy as np\nx = np.zeros(4)\n")
        # Every pass consumes model.tree; make sure the model exposes a
        # real parse, not a re-parse per rule.
        assert isinstance(model.tree, ast.Module)
        assert model.source_lines[1] == "x = np.zeros(4)"
