"""Unit tests for every repro-lint rule (R001-R008), positive and negative."""

import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.tools.lint import RULES, lint_paths, lint_source, main

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def codes_for(source, path="src/repro/core/example.py"):
    """Lint a snippet and return the sorted list of rule codes raised."""
    diagnostics = lint_source(textwrap.dedent(source), Path(path))
    return sorted(d.code for d in diagnostics)


class TestR001RngDiscipline:
    def test_flags_default_rng_call(self):
        assert codes_for(
            """
            import numpy as np
            rng = np.random.default_rng(0)
            """
        ) == ["R001"]

    def test_flags_legacy_seed_and_module_functions(self):
        assert codes_for(
            """
            import numpy as np
            np.random.seed(3)
            x = np.random.rand(4)
            """
        ) == ["R001", "R001"]

    def test_flags_from_import_alias(self):
        assert codes_for(
            """
            from numpy.random import default_rng as mk
            rng = mk(0)
            """
        ) == ["R001"]

    def test_flags_numpy_random_module_alias(self):
        assert codes_for(
            """
            from numpy import random
            random.normal(size=3)
            """
        ) == ["R001"]

    def test_allows_ensure_rng_and_generator_annotations(self):
        assert codes_for(
            """
            from __future__ import annotations

            import numpy as np

            from repro.utils import ensure_rng

            def draw(rng: np.random.Generator | None = None) -> float:
                '''Draw one sample through the sanctioned RNG plumbing.'''
                if isinstance(rng, np.random.Generator):
                    return float(rng.random())
                return float(ensure_rng(rng).random())
            """
        ) == []

    def test_rng_module_itself_is_exempt(self):
        source = """
            import numpy as np
            rng = np.random.default_rng(0)
            """
        assert codes_for(source, path="src/repro/utils/rng.py") == []

    def test_noqa_suppresses(self):
        assert codes_for(
            """
            import numpy as np
            rng = np.random.default_rng(0)  # noqa: R001
            """
        ) == []


class TestR002FutureAnnotations:
    def test_flags_pep604_without_future_import(self):
        assert codes_for(
            """
            def f(x: int | None) -> int:
                return x or 0
            """
        ) == ["R002", "R006"]

    def test_flags_pep585_without_future_import(self):
        assert codes_for(
            """
            def _f(x: list[int]):
                return x
            """
        ) == ["R002"]

    def test_flags_annotated_assignment(self):
        assert codes_for("x: dict[str, int] = {}\n") == ["R002"]

    def test_clean_with_future_import(self):
        assert codes_for(
            """
            from __future__ import annotations

            def _f(x: list[int] | None):
                return x
            """
        ) == []

    def test_typing_generics_do_not_require_future_import(self):
        assert codes_for(
            """
            from typing import List, Optional

            def _f(x: Optional[List[int]]):
                return x
            """
        ) == []


class TestR003FloatEqualityOnOffsets:
    def test_flags_offset_equality(self):
        assert codes_for(
            """
            def _f(offset_bins, other):
                return offset_bins == other
            """
        ) == ["R003"]

    def test_flags_bin_inequality_attribute(self):
        assert codes_for(
            """
            def _f(peak, target):
                return peak.position_bins != target
            """
        ) == ["R003"]

    def test_allows_tolerance_compare(self):
        assert codes_for(
            """
            def _f(offset_bins, other):
                return abs(offset_bins - other) < 1e-9
            """
        ) == []

    def test_allows_size_compare_of_bins_array(self):
        assert codes_for(
            """
            def _f(positions_bins, delays):
                return positions_bins.size != delays.size
            """
        ) == []

    def test_allows_unrelated_names_and_none(self):
        assert codes_for(
            """
            def _f(count, offset_bins):
                return count == 3 and offset_bins is None
            """
        ) == []


class TestR004MutableDefaults:
    def test_flags_list_dict_set_defaults(self):
        assert codes_for(
            """
            def _f(a=[], b={}, c=set()):
                return a, b, c
            """
        ) == ["R004", "R004", "R004"]

    def test_flags_kwonly_mutable_default(self):
        assert codes_for(
            """
            def _f(*, acc=[]):
                return acc
            """
        ) == ["R004"]

    def test_allows_none_and_immutable_defaults(self):
        assert codes_for(
            """
            def _f(a=None, b=(), c=3, d="x"):
                return a, b, c, d
            """
        ) == []


class TestR005BareExcept:
    def test_flags_bare_except(self):
        assert codes_for(
            """
            try:
                pass
            except:
                pass
            """
        ) == ["R005"]

    def test_allows_typed_except(self):
        assert codes_for(
            """
            try:
                pass
            except (ValueError, KeyError):
                pass
            except Exception:
                pass
            """
        ) == []


class TestR006Docstrings:
    def test_flags_public_function_in_core(self):
        source = """
            def decode(x):
                return x
            """
        assert codes_for(source, path="src/repro/core/example.py") == ["R006"]

    def test_flags_public_method_in_phy(self):
        source = """
            class Modulator:
                def modulate(self, x):
                    return x
            """
        assert codes_for(source, path="src/repro/phy/example.py") == ["R006"]

    def test_allows_private_and_documented_and_nested(self):
        source = '''
            def decode(x):
                """Documented."""
                def helper(y):
                    return y
                return helper(x)

            def _internal(x):
                return x
            '''
        assert codes_for(source, path="src/repro/core/example.py") == []

    def test_not_enforced_outside_core_and_phy(self):
        source = """
            def run(x):
                return x
            """
        assert codes_for(source, path="src/repro/experiments/example.py") == []


class TestR007LstsqInCore:
    def test_flags_np_linalg_lstsq_in_core(self):
        source = """
            import numpy as np
            h = np.linalg.lstsq(a, b, rcond=None)
            """
        assert codes_for(source, path="src/repro/core/residual.py") == ["R007"]

    def test_flags_linalg_submodule_alias(self):
        source = """
            import numpy.linalg as la
            h = la.lstsq(a, b, rcond=None)
            """
        assert codes_for(source, path="src/repro/core/sic.py") == ["R007"]

    def test_flags_from_import(self):
        source = """
            from numpy.linalg import lstsq as solve
            h = solve(a, b, rcond=None)
            """
        assert codes_for(source, path="src/repro/core/offsets.py") == ["R007"]

    def test_allows_chanest_and_engine(self):
        source = """
            import numpy as np
            h = np.linalg.lstsq(a, b, rcond=None)
            """
        assert codes_for(source, path="src/repro/core/chanest.py") == []
        assert codes_for(source, path="src/repro/core/engine.py") == []

    def test_not_enforced_outside_core(self):
        source = """
            import numpy as np
            h = np.linalg.lstsq(a, b, rcond=None)
            """
        assert codes_for(source, path="src/repro/phy/example.py") == []

    def test_allows_other_linalg_calls_in_core(self):
        source = """
            import numpy as np
            h = np.linalg.solve(a, b)
            """
        assert codes_for(source, path="src/repro/core/residual.py") == []


class TestR008PerfCounterInGateway:
    def test_flags_time_perf_counter_in_gateway(self):
        source = """
            import time
            started = time.perf_counter()
            """
        assert codes_for(source, path="src/repro/gateway/runtime.py") == ["R008"]

    def test_flags_module_alias(self):
        source = """
            import time as t
            started = t.perf_counter()
            """
        assert codes_for(source, path="src/repro/gateway/workers.py") == ["R008"]

    def test_flags_from_import_alias(self):
        source = """
            from time import perf_counter as tick
            started = tick()
            """
        assert codes_for(source, path="src/repro/gateway/sharded.py") == ["R008"]

    def test_allows_telemetry_and_trace(self):
        source = """
            import time
            started = time.perf_counter()
            """
        assert codes_for(source, path="src/repro/gateway/telemetry.py") == []
        assert codes_for(source, path="src/repro/gateway/trace/spans.py") == []

    def test_not_enforced_outside_gateway(self):
        source = """
            import time
            started = time.perf_counter()
            """
        assert codes_for(source, path="src/repro/core/decoder.py") == []

    def test_allows_other_time_calls_in_gateway(self):
        source = """
            import time
            time.sleep(0.01)
            now = time.time()
            """
        assert codes_for(source, path="src/repro/gateway/workers.py") == []

    def test_noqa_suppresses(self):
        source = """
            import time
            started = time.perf_counter()  # noqa: R008
            """
        assert codes_for(source, path="src/repro/gateway/runtime.py") == []


class TestR012CascadeLayering:
    def test_flags_from_import_in_gateway(self):
        source = """
            from repro.core.fastpath import FastPathDecoder
            """
        assert codes_for(source, path="src/repro/gateway/workers.py") == ["R012"]

    def test_flags_plain_import_in_server(self):
        source = """
            import repro.core.fastpath
            """
        assert codes_for(source, path="src/repro/server/server.py") == ["R012"]

    def test_flags_submodule_import_from_package(self):
        source = """
            from repro.core import fastpath
            """
        assert codes_for(source, path="src/repro/gateway/runtime.py") == ["R012"]

    def test_flags_resolved_call_through_alias(self):
        source = """
            from repro.core.fastpath import FastPathDecoder as FP
            decoder = FP(params)
            """
        assert codes_for(source, path="src/repro/gateway/sharded.py") == [
            "R012",
            "R012",
        ]

    def test_allows_cascade_entry_point(self):
        source = """
            from repro.core.cascade import DECODE_TIERS, build_pipeline
            pipeline = build_pipeline("cascade", params)
            """
        assert codes_for(source, path="src/repro/gateway/workers.py") == []

    def test_not_enforced_inside_core(self):
        source = """
            from repro.core.fastpath import FastPathDecoder
            decoder = FastPathDecoder(params)
            """
        assert codes_for(source, path="src/repro/core/cascade.py") == []

    def test_noqa_suppresses(self):
        source = """
            from repro.core.fastpath import FastPathDecoder  # noqa: R012
            """
        assert codes_for(source, path="src/repro/gateway/workers.py") == []


class TestDiagnosticsAndCli:
    def test_diagnostic_format_is_file_line_code(self):
        diagnostics = lint_source(
            "import numpy as np\nnp.random.seed(1)\n", Path("src/repro/mac/x.py")
        )
        assert len(diagnostics) == 1
        rendered = diagnostics[0].format()
        assert rendered.startswith("src/repro/mac/x.py:2:R001 ")

    def test_syntax_error_becomes_diagnostic(self):
        diagnostics = lint_source("def broken(:\n", Path("src/repro/core/x.py"))
        assert [d.code for d in diagnostics] == ["E999"]

    def test_rule_catalog_covers_r001_through_r013(self):
        assert sorted(RULES) == [
            "R001",
            "R002",
            "R003",
            "R004",
            "R005",
            "R006",
            "R007",
            "R008",
            "R009",
            "R010",
            "R011",
            "R012",
            "R013",
        ]

    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "ok.py").write_text("X = 1\n")
        (tmp_path / "bad.py").write_text("import numpy as np\nnp.random.rand(2)\n")
        diagnostics = lint_paths([tmp_path])
        assert [d.code for d in diagnostics] == ["R001"]

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("X = 1\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("try:\n    pass\nexcept:\n    pass\n")

        assert main([str(clean)]) == 0
        assert main([str(dirty)]) == 1
        out = capsys.readouterr().out
        assert f"{dirty}:3:R005" in out
        assert main([str(tmp_path / "missing")]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "R001" in out and "R008" in out

    def test_wrapper_script_runs_without_pythonpath(self, tmp_path):
        wrapper = REPO_ROOT / "tools" / "repro_lint.py"
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import numpy as np\nnp.random.seed(0)\n")
        result = subprocess.run(
            [sys.executable, str(wrapper), str(dirty)],
            capture_output=True,
            text=True,
            env={"PATH": "/usr/bin:/bin:/usr/local/bin"},
        )
        assert result.returncode == 1
        assert ":2:R001" in result.stdout

    @pytest.mark.parametrize("code", sorted(RULES))
    def test_every_rule_has_a_description(self, code):
        assert len(RULES[code]) > 10
