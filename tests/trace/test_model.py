"""Tests for the span-tree data model and the ambient trace context."""

import pytest

from repro.trace import context as trace_context
from repro.trace.model import PacketTrace, Span, SpanEvent, TraceBuilder


def _sample_tree() -> Span:
    root = Span(name="job", start_ts=10.0, end_ts=12.0, attrs={"job_id": 3})
    child = Span(name="align", start_ts=10.2, end_ts=10.4, attrs={"score": 8.5})
    child.events.append(SpanEvent(name="detect.align", ts=10.3, attrs={"start": 64}))
    root.children.append(child)
    return root


class TestSpan:
    def test_duration(self):
        span = Span(name="x", start_ts=1.0, end_ts=1.5)
        assert span.duration_s == pytest.approx(0.5)
        assert Span(name="open", start_ts=2.0).duration_s == 0.0

    def test_structure_strips_timestamps(self):
        structure = _sample_tree().structure()
        text = str(structure)
        assert "ts" not in structure
        assert "start_ts" not in text and "10.3" not in text
        assert structure["children"][0]["attrs"]["score"] == 8.5
        assert structure["children"][0]["events"][0]["name"] == "detect.align"

    def test_dict_roundtrip(self):
        root = _sample_tree()
        restored = Span.from_dict(root.to_dict())
        assert restored.to_dict() == root.to_dict()
        assert restored.children[0].events[0].attrs == {"start": 64}

    def test_walk_and_find_events(self):
        root = _sample_tree()
        assert [s.name for s in root.walk()] == ["job", "align"]
        events = root.find_events("detect.align")
        assert len(events) == 1
        assert root.find_events("missing") == []


class TestPacketTrace:
    def _packet(self) -> PacketTrace:
        return PacketTrace(
            key=(0, 7, 2),
            job_id=2,
            channel=0,
            spreading_factor=7,
            start_sample=4096,
            detection_score=3.5,
            sampled=True,
            root=_sample_tree(),
            label="ch0.sf7",
        )

    def test_dict_roundtrip(self):
        packet = self._packet()
        restored = PacketTrace.from_dict(packet.to_dict())
        assert restored.to_dict() == packet.to_dict()
        assert restored.key == (0, 7, 2)

    def test_structure_is_timestamp_free(self):
        a = self._packet()
        b = self._packet()
        b.root.start_ts += 100.0
        b.root.end_ts += 100.0
        assert a.structure() == b.structure()
        assert a.to_dict() != b.to_dict()


class TestTraceBuilder:
    def test_nested_spans_and_events(self):
        builder = TraceBuilder("decode.job", job_id=1)
        with builder.span("align") as align:
            builder.annotate(score=9.0)
            with builder.span("attempt", index=0):
                builder.event("sic.tier", tier=0)
        root = builder.finish()
        assert root.attrs == {"job_id": 1}
        assert align.attrs == {"score": 9.0}
        assert [s.name for s in root.walk()] == ["decode.job", "align", "attempt"]
        assert root.find_events("sic.tier")[0].attrs == {"tier": 0}

    def test_finish_closes_open_spans_idempotently(self):
        builder = TraceBuilder("job")
        builder._stack.append(
            Span(name="left-open", start_ts=builder.root.start_ts)
        )
        builder.root.children.append(builder._stack[-1])
        root = builder.finish()
        assert all(s.end_ts >= s.start_ts for s in root.walk())
        assert builder.finish() is root

    def test_current_tracks_innermost(self):
        builder = TraceBuilder("job")
        assert builder.current is builder.root
        with builder.span("inner") as inner:
            assert builder.current is inner
        assert builder.current is builder.root


class TestAmbientContext:
    def test_inactive_is_noop(self):
        assert trace_context.current() is None
        assert not trace_context.trace_active()
        trace_context.add_event("x", a=1)
        trace_context.annotate(a=1)
        with trace_context.span("x"):
            pass  # must not raise without an active builder

    def test_use_builder_routes_calls(self):
        builder = TraceBuilder("job")
        with trace_context.use_builder(builder):
            assert trace_context.trace_active()
            assert trace_context.current() is builder
            with trace_context.span("stage", kind="test"):
                trace_context.add_event("evt", value=2)
                trace_context.annotate(extra=True)
        assert not trace_context.trace_active()
        root = builder.finish()
        stage = root.children[0]
        assert stage.name == "stage"
        assert stage.attrs == {"kind": "test", "extra": True}
        assert stage.events[0].attrs == {"value": 2}

    def test_use_builder_accepts_none(self):
        with trace_context.use_builder(None):
            assert not trace_context.trace_active()

    def test_nesting_restores_previous(self):
        outer, inner = TraceBuilder("outer"), TraceBuilder("inner")
        with trace_context.use_builder(outer):
            with trace_context.use_builder(inner):
                assert trace_context.current() is inner
            assert trace_context.current() is outer
        assert trace_context.current() is None
