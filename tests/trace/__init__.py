"""Tests for the decode-provenance tracing and forensics subsystem."""
