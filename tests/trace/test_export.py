"""Tests for trace serialization: JSONL and Chrome trace-event JSON."""

import json

import pytest

from repro.trace.export import (
    TRACE_FORMAT,
    chrome_trace,
    load_packets,
    load_trace,
    to_jsonl,
    trace_data,
    write_trace,
)
from repro.trace.model import PacketTrace, Span, SpanEvent
from repro.trace.recorder import TraceConfig, TraceRecorder


def _recorder() -> TraceRecorder:
    recorder = TraceRecorder(TraceConfig(sample_rate=1.0))
    recorder.set_header(run_kind="gateway", executor="serial", seed=0)
    recorder.set_ground_truth(
        [{"node_id": 0, "payload": "aabbccdd", "start_sample": 100, "channel": 0}]
    )
    recorder.record_detection(
        job_id=0, key=(0,), channel=0, spreading_factor=7,
        start_sample=100, score=4.2, label="ch0.sf7",
    )
    root = Span(name="decode.job", start_ts=1.0, end_ts=2.0)
    root.events.append(SpanEvent(name="result", ts=1.5, attrs={"crc_ok": True}))
    trace = PacketTrace(
        key=(0,), job_id=0, channel=0, spreading_factor=7,
        start_sample=100, detection_score=4.2, sampled=True,
        root=root, label="ch0.sf7",
    )
    recorder.record_outcome(
        job_id=0, key=(0,), channel=0, spreading_factor=7, start_sample=100,
        detection_score=4.2, crc_ok=True, n_users=1, sync_retries=0,
        error=None, payload=bytes.fromhex("aabbccdd"),
        users=((3.25, "aabbccdd", True),), trace=trace,
    )
    return recorder


class TestJsonl:
    def test_row_kinds(self):
        rows = [json.loads(line) for line in to_jsonl(_recorder()).splitlines()]
        kinds = [row["kind"] for row in rows]
        assert kinds == ["header", "truth", "detection", "outcome", "packet"]
        assert rows[0]["format"] == TRACE_FORMAT
        assert rows[0]["executor"] == "serial"
        assert rows[3]["payload"] == "aabbccdd"
        assert rows[3]["users"][0]["offset_bins"] == 3.25

    def test_roundtrip_through_file(self, tmp_path):
        recorder = _recorder()
        path = tmp_path / "trace.jsonl"
        write_trace(recorder, path)
        data = load_trace(path)
        assert data["header"]["seed"] == 0
        assert data["outcomes"] == trace_data(recorder)["outcomes"]
        packets = load_packets(data)
        assert len(packets) == 1
        assert packets[0].structure() == recorder.packets[0].structure()


class TestChromeTrace:
    def test_event_shapes(self):
        doc = chrome_trace(_recorder())
        events = doc["traceEvents"]
        phases = {event["ph"] for event in events}
        assert phases == {"M", "X", "i"}
        complete = [e for e in events if e["ph"] == "X"]
        assert complete[0]["name"] == "decode.job"
        assert complete[0]["dur"] == pytest.approx(1e6)
        names = [e for e in events if e["ph"] == "M"]
        assert any(e["args"]["name"] == "repro-gateway" for e in names)
        assert any(e["args"]["name"] == "ch0.sf7" for e in names)

    def test_embeds_full_payload(self):
        doc = chrome_trace(_recorder())
        assert doc["reproTrace"]["format"] == TRACE_FORMAT
        assert len(doc["reproTrace"]["packets"]) == 1

    def test_roundtrip_through_file(self, tmp_path):
        recorder = _recorder()
        path = tmp_path / "trace.json"
        write_trace(recorder, path)
        data = load_trace(path)
        assert data["outcomes"] == trace_data(recorder)["outcomes"]
        assert load_packets(data)[0].key == (0,)

    def test_per_label_tracks(self):
        recorder = _recorder()
        other = PacketTrace(
            key=(1,), job_id=1, channel=1, spreading_factor=8,
            start_sample=50, detection_score=2.0, sampled=True,
            root=Span(name="decode.job", start_ts=1.0, end_ts=1.1),
            label="ch1.sf8",
        )
        recorder.record_outcome(
            job_id=1, key=(1,), channel=1, spreading_factor=8, start_sample=50,
            detection_score=2.0, crc_ok=False, n_users=0, sync_retries=0,
            error=None, payload=None, trace=other,
        )
        doc = chrome_trace(recorder)
        tids = {
            e["args"]["name"]: e["tid"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert set(tids) == {"ch0.sf7", "ch1.sf8"}
        assert len(set(tids.values())) == 2


class TestLoadErrors:
    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError, match="not a repro trace"):
            load_trace(path)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_trace(path)
