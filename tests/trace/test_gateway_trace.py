"""End-to-end tracing through the streaming gateway.

The determinism contract under test: a trace's ``structure()`` (the
timestamp-free span tree) is a pure function of the run seed, so serial
and threaded executions of the same stream must produce identical trees.
"""

import numpy as np
import time

from repro.gateway import (
    DecodeWorkerPool,
    Gateway,
    GatewayConfig,
    SyntheticTrafficSource,
)
from repro.gateway.workers import DecodeJob
from repro.trace.recorder import TraceConfig, TraceRecorder, sample_key
from tests.gateway.conftest import PARAMS, PAYLOAD_LEN, periodic_node
from tests.gateway.test_workers import N_DATA, _clean_window


def _run(executor="serial", seed=0, **trace_overrides):
    source = SyntheticTrafficSource(
        PARAMS, [periodic_node()], duration_s=1.0, payload_len=PAYLOAD_LEN, rng=seed
    )
    config = GatewayConfig(
        params=PARAMS,
        payload_len=PAYLOAD_LEN,
        executor=executor,
        n_workers=4 if executor != "serial" else 1,
        seed=seed,
        trace=True,
        **trace_overrides,
    )
    return Gateway(config).run(source)


class TestGatewayTracing:
    def test_trace_off_by_default(self):
        source = SyntheticTrafficSource(
            PARAMS, [periodic_node()], duration_s=0.5, payload_len=PAYLOAD_LEN, rng=0
        )
        report = Gateway(
            GatewayConfig(params=PARAMS, payload_len=PAYLOAD_LEN, seed=0)
        ).run(source)
        assert report.trace is None

    def test_full_rate_traces_every_job(self):
        report = _run()
        recorder = report.trace
        assert isinstance(recorder, TraceRecorder)
        assert recorder.header["run_kind"] == "gateway"
        assert recorder.header["seed"] == 0
        assert recorder.truth  # synthetic source ships ground truth
        assert len(recorder.detections) == report.packets_detected
        assert len(recorder.outcomes) == len(report.outcomes)
        assert len(recorder.packets) == len(report.outcomes)

    def test_span_tree_carries_pipeline_evidence(self):
        packet = _run().trace.packets[0]
        names = [span.name for span in packet.root.walk()]
        assert names[0] == "decode.job"
        assert "align" in names and "attempt" in names
        assert packet.root.find_events("detect.align")
        assert packet.root.find_events("sic.tier")
        result = packet.root.find_events("result")
        assert result and result[0].attrs["crc_ok"] is True
        align = next(s for s in packet.root.walk() if s.name == "align")
        assert align.attrs["score"] > 0

    def test_serial_and_thread_trees_identical(self):
        serial = _run(executor="serial")
        threaded = _run(executor="thread")
        serial_trees = [p.structure() for p in serial.trace.packets]
        thread_trees = [p.structure() for p in threaded.trace.packets]
        assert serial_trees == thread_trees
        assert len(serial_trees) == 4

    def test_sample_rate_zero_keeps_no_healthy_traces(self):
        report = _run(trace_sample_rate=0.0, trace_always_sample_failures=True)
        # Clean traffic: every decode passes CRC, so nothing is retained --
        # but the detection/outcome rows (the forensics substrate) remain.
        assert len(report.trace.packets) == 0
        assert report.trace.outcomes
        assert all(o["crc_ok"] for o in report.trace.outcomes)

    def test_sampling_is_deterministic_by_key(self):
        recorder = TraceRecorder(
            TraceConfig(sample_rate=0.5, always_sample_failures=False)
        )
        keys = [(0, sf, seq) for sf in (7, 8) for seq in range(20)]
        decisions = {key: recorder.directive(key).sampled for key in keys}
        assert decisions == {key: sample_key(key) < 0.5 for key in keys}
        assert 0 < sum(decisions.values()) < len(keys)


class TestAlwaysSampleFailures:
    def _noise_job(self, job_id: int = 0) -> DecodeJob:
        rng = np.random.default_rng(123)
        n = 30 * PARAMS.samples_per_symbol
        samples = (rng.standard_normal(n) + 1j * rng.standard_normal(n)) / np.sqrt(2)
        return DecodeJob(
            job_id=job_id,
            samples=samples,
            n_data_symbols=N_DATA,
            payload_len=PAYLOAD_LEN,
            start_sample=0,
            detection_score=1.1,
            created_at=time.perf_counter(),
            rng_key=(job_id,),
        )

    def test_failed_job_trace_retained_at_rate_zero(self):
        recorder = TraceRecorder(
            TraceConfig(sample_rate=0.0, always_sample_failures=True)
        )
        pool = DecodeWorkerPool(
            PARAMS, executor="serial", rng=0, trace_recorder=recorder
        )
        ok_job, _ = _clean_window(seed=10, lead=32)
        pool.submit(ok_job)
        pool.submit(self._noise_job(job_id=99))
        outcomes = {o.job_id: o for o in pool.close()}
        assert outcomes[10].crc_ok
        assert not outcomes[99].crc_ok
        # Only the failure's span tree survives the rate-0 policy.
        assert [p.job_id for p in recorder.packets] == [99]
        assert len(recorder.outcomes) == 2

    def test_failures_disabled_keeps_nothing(self):
        recorder = TraceRecorder(
            TraceConfig(sample_rate=0.0, always_sample_failures=False)
        )
        pool = DecodeWorkerPool(
            PARAMS, executor="serial", rng=0, trace_recorder=recorder
        )
        pool.submit(self._noise_job())
        pool.close()
        assert len(recorder.packets) == 0
