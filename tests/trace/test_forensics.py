"""Tests for the packet-forensics classifier and the post-mortem report.

The end-to-end class replays the standard 20-packet benchmark scenario
(2 nodes at 0.5 s over 5 s, SF7) with failure-only trace
sampling and checks the acceptance property: every non-recovered packet
gets a drop reason from the taxonomy -- ``unknown`` never appears.
"""

import json

import pytest

from repro.gateway import Gateway, GatewayConfig, SyntheticTrafficSource
from repro.mac.simulator import NodeConfig
from repro.trace.export import load_trace, write_trace
from repro.trace.forensics import (
    CLUSTER_AMBIGUOUS,
    CRC_FAIL,
    DECODE_ERROR,
    DISPATCH_DROPPED,
    MISALIGNED,
    NOT_DETECTED,
    UNKNOWN,
    ForensicsReport,
    PostMortem,
    analyze,
    classify_outcome,
    main,
    sic_tier_reason,
)
from repro.trace.model import PacketTrace, Span, SpanEvent
from tests.gateway.conftest import PARAMS, PAYLOAD_LEN


def _outcome(**overrides):
    base = {
        "job_id": 0,
        "key": [0],
        "channel": 0,
        "spreading_factor": 7,
        "start_sample": 0,
        "detection_score": 3.0,
        "crc_ok": False,
        "n_users": 1,
        "sync_retries": 0,
        "error": None,
        "payload": None,
        "users": [{"offset_bins": 3.5, "payload": None, "crc_ok": False}],
    }
    base.update(overrides)
    return base


def _trace(root: Span) -> PacketTrace:
    return PacketTrace(
        key=(0,), job_id=0, channel=0, spreading_factor=7,
        start_sample=0, detection_score=3.0, sampled=True, root=root,
    )


def _root(*, align_score=None, sic_tiers=0, conflicts=False) -> Span:
    root = Span(name="decode.job", start_ts=0.0, end_ts=1.0)
    if align_score is not None:
        root.children.append(
            Span(name="align", start_ts=0.0, end_ts=0.1, attrs={"score": align_score})
        )
    for tier in range(sic_tiers):
        root.events.append(
            SpanEvent(
                name="sic.tier",
                ts=0.5,
                attrs={"tier": tier, "residual_power": 1.0 / (tier + 1)},
            )
        )
    if conflicts:
        root.events.append(
            SpanEvent(name="decode.conflict", ts=0.6, attrs={"users": [0, 1]})
        )
    return root


class TestClassifyOutcome:
    def test_decode_error(self):
        reason, stage, detail = classify_outcome(
            _outcome(error="boom"), None
        )
        assert (reason, stage) == (DECODE_ERROR, "decode")
        assert "boom" in detail

    def test_sic_residual_floor_with_trace(self):
        reason, stage, detail = classify_outcome(
            _outcome(n_users=0, users=[]), _trace(_root(sic_tiers=3))
        )
        assert reason == sic_tier_reason(3)
        assert stage == "sic"
        assert "residual power" in detail

    def test_sic_residual_floor_without_trace(self):
        reason, _, _ = classify_outcome(_outcome(n_users=0, users=[]), None)
        assert reason == sic_tier_reason(1)

    def test_misaligned(self):
        reason, stage, detail = classify_outcome(
            _outcome(), _trace(_root(align_score=2.5, sic_tiers=1))
        )
        assert (reason, stage) == (MISALIGNED, "align")
        assert "2.50" in detail

    def test_conflicts_mean_cluster_ambiguous(self):
        reason, stage, _ = classify_outcome(
            _outcome(), _trace(_root(align_score=9.0, conflicts=True))
        )
        assert (reason, stage) == (CLUSTER_AMBIGUOUS, "cluster")

    def test_near_collided_fractionals_mean_cluster_ambiguous(self):
        users = [
            {"offset_bins": 3.30, "payload": None, "crc_ok": False},
            {"offset_bins": 7.35, "payload": None, "crc_ok": False},
        ]
        reason, _, detail = classify_outcome(
            _outcome(n_users=2, users=users), None
        )
        assert reason == CLUSTER_AMBIGUOUS
        assert "0.300" in detail

    def test_everything_healthy_is_crc_fail(self):
        reason, stage, _ = classify_outcome(
            _outcome(), _trace(_root(align_score=9.0, sic_tiers=1))
        )
        assert (reason, stage) == (CRC_FAIL, "crc")


def _data(truth=(), detections=(), outcomes=(), packets=()):
    return {
        "format": "repro-trace/v1",
        "base_ts": 0.0,
        "header": {},
        "truth": list(truth),
        "detections": list(detections),
        "outcomes": list(outcomes),
        "packets": [p.to_dict() for p in packets],
    }


def _truth_row(**overrides):
    base = {
        "node_id": 0,
        "payload": "aabbccdd",
        "start_sample": 1000,
        "channel": 0,
        "spreading_factor": 7,
        "frame_samples": 3072,
        "snr_db": 15.0,
    }
    base.update(overrides)
    return base


class TestAnalyze:
    def test_recovered_by_payload_match(self):
        outcome = _outcome(
            crc_ok=True,
            payload="aabbccdd",
            users=[{"offset_bins": 3.5, "payload": "aabbccdd", "crc_ok": True}],
        )
        detection = {
            "job_id": 0, "key": [0], "channel": 0, "spreading_factor": 7,
            "start_sample": 900, "score": 4.0, "label": "",
        }
        report = analyze(
            _data(truth=[_truth_row()], detections=[detection], outcomes=[outcome])
        )
        assert report.n_recovered == 1
        assert report.packets[0].stage_reached == "recovered"
        assert report.histogram == {}

    def test_not_detected(self):
        report = analyze(_data(truth=[_truth_row()]))
        packet = report.packets[0]
        assert not packet.recovered
        assert packet.reason == NOT_DETECTED
        assert report.histogram == {NOT_DETECTED: 1}

    def test_dispatch_dropped(self):
        detection = {
            "job_id": 5, "key": [5], "channel": 0, "spreading_factor": 7,
            "start_sample": 1100, "score": 4.0, "label": "",
        }
        report = analyze(_data(truth=[_truth_row()], detections=[detection]))
        packet = report.packets[0]
        assert packet.reason == DISPATCH_DROPPED
        assert packet.job_id == 5

    def test_one_payload_claims_one_truth_packet(self):
        # Two identical transmitted payloads, one verified decode: the
        # pool is consumed once, so exactly one packet counts recovered.
        outcome = _outcome(
            crc_ok=True,
            payload="aabbccdd",
            users=[{"offset_bins": 3.5, "payload": "aabbccdd", "crc_ok": True}],
        )
        detection = {
            "job_id": 0, "key": [0], "channel": 0, "spreading_factor": 7,
            "start_sample": 1000, "score": 4.0, "label": "",
        }
        report = analyze(
            _data(
                truth=[_truth_row(), _truth_row(node_id=1, start_sample=9000)],
                detections=[detection],
                outcomes=[outcome],
            )
        )
        assert report.n_recovered == 1
        assert len(report.packets) == 2

    def test_without_truth_reports_per_outcome(self):
        outcomes = [
            _outcome(crc_ok=True, payload="ff00", key=[0]),
            _outcome(key=[1], job_id=1),
        ]
        report = analyze(_data(outcomes=outcomes))
        assert len(report.packets) == 2
        assert report.packets[0].recovered
        assert report.packets[1].reason == CRC_FAIL

    def test_summary_lists_every_packet(self):
        report = analyze(_data(truth=[_truth_row()]))
        text = report.summary()
        assert "1 packets, 0 recovered, 1 lost" in text
        assert NOT_DETECTED in text
        assert "drop-reason histogram" in text

    def test_report_histogram_matches_losses(self):
        report = ForensicsReport(
            packets=[
                PostMortem(
                    index=i, node_id=i, channel=0, spreading_factor=7,
                    start_sample=0, payload=None, recovered=False,
                    reason=CRC_FAIL, stage_reached="crc", job_id=i,
                )
                for i in range(3)
            ]
        )
        assert report.histogram == {CRC_FAIL: 3}


class TestBenchScenario:
    """The standard 20-packet benchmark run, failure-sampled and dissected."""

    @pytest.fixture(scope="class")
    def bench_report(self):
        # The standard single-channel bench scenario: 2 nodes at
        # 0.5 s over 5 s -> 20 transmitted packets, seed 0, SF7.
        source = SyntheticTrafficSource(
            PARAMS,
            [NodeConfig(node_id=i, snr_db=15.0, period_s=0.5) for i in range(2)],
            duration_s=5.0,
            payload_len=PAYLOAD_LEN,
            rng=0,
        )
        config = GatewayConfig(
            params=PARAMS,
            payload_len=PAYLOAD_LEN,
            n_workers=2,
            executor="thread",
            seed=0,
            trace=True,
            trace_sample_rate=0.0,
            trace_always_sample_failures=True,
        )
        return Gateway(config).run(source)

    def test_every_lost_packet_gets_a_reason(self, bench_report, tmp_path):
        path = tmp_path / "bench_trace.jsonl"
        write_trace(bench_report.trace, path)
        report = analyze(load_trace(path))
        assert len(report.packets) == 20
        lost = [p for p in report.packets if not p.recovered]
        assert report.n_recovered + len(lost) == 20
        for packet in lost:
            assert packet.reason is not None
            assert packet.reason != UNKNOWN
            assert packet.stage_reached != ""
        assert sum(report.histogram.values()) == len(lost)

    def test_failure_trace_is_captured(self, bench_report):
        # The committed baseline records one CRC failure for this seed;
        # failure-only sampling must retain exactly the failing jobs.
        failed = [o for o in bench_report.trace.outcomes if not o["crc_ok"]]
        assert failed
        assert len(bench_report.trace.packets) == len(failed)

    def test_cli_prints_post_mortem(self, bench_report, tmp_path, capsys):
        path = tmp_path / "bench_trace.json"
        write_trace(bench_report.trace, path)
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "packet forensics: 20 packets" in out

    def test_cli_json_mode(self, bench_report, tmp_path, capsys):
        path = tmp_path / "bench_trace.jsonl"
        write_trace(bench_report.trace, path)
        assert main([str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["packets"]) == 20
        assert payload["recovered"] + sum(payload["histogram"].values()) == 20


class TestCliErrors:
    def test_missing_file(self, capsys):
        assert main(["/nonexistent/trace.jsonl"]) == 2
        assert "repro forensics:" in capsys.readouterr().err
