"""The README quickstart must keep working verbatim."""

from repro import (
    ChoirDecoder,
    CollisionChannel,
    LoRaFramer,
    LoRaParams,
    LoRaRadio,
    ensure_rng,
)


def test_readme_quickstart_recovers_all_payloads():
    params = LoRaParams(spreading_factor=8, bandwidth=125_000.0, preamble_len=8)
    rng = ensure_rng(9)
    framer = LoRaFramer(params, coding_rate=4)

    payloads = [b"station-A: 21.4C", b"station-B: 19.8C", b"station-C: 22.3C"]
    frames = [framer.encode(p) for p in payloads]
    radios = [LoRaRadio(params, node_id=i, rng=rng) for i in range(3)]
    channel = CollisionChannel(params, noise_power=1.0)
    packet = channel.receive(
        [(r, f.symbols, 12.0 + 0j) for r, f in zip(radios, frames)], rng=rng
    )

    recovered = set()
    for user in ChoirDecoder(params, rng=rng).decode(packet.samples, frames[0].n_symbols):
        result = user.decode_payload(framer, 16)
        if result.crc_ok:
            recovered.add(result.payload)
    assert recovered == set(payloads)
