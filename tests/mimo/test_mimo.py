"""Tests for the MU-MIMO baseline and multi-antenna Choir."""

import numpy as np
import pytest

from repro.core import ChoirDecoder
from repro.hardware import LoRaRadio, OscillatorModel, TimingModel
from repro.mimo import (
    ZfMimoDecoder,
    decode_choir_multiantenna,
    receive_multiantenna,
)
from repro.phy import LoRaParams

PARAMS = LoRaParams(spreading_factor=8, preamble_len=8)


def _radio(rng, cfo_bins, delay=0.0, node_id=0):
    return LoRaRadio(
        PARAMS,
        oscillator=OscillatorModel(PARAMS.bins_to_hz(cfo_bins)),
        timing=TimingModel(delay / PARAMS.sample_rate),
        node_id=node_id,
        rng=rng,
    )


def _capture(rng, cfos, n_antennas=3, snr_db=20.0, n_symbols=10, delays=None):
    delays = delays or [0.0] * len(cfos)
    radios = [_radio(rng, c, d, i) for i, (c, d) in enumerate(zip(cfos, delays))]
    streams = [rng.integers(0, 256, n_symbols) for _ in radios]
    amplitude = 10 ** (snr_db / 20.0)
    h = amplitude * (
        rng.normal(size=(n_antennas, len(radios)))
        + 1j * rng.normal(size=(n_antennas, len(radios)))
    ) / np.sqrt(2)
    capture = receive_multiantenna(
        PARAMS, list(zip(radios, streams)), h, noise_power=1.0, rng=rng
    )
    return capture, streams


class TestReceiveMultiantenna:
    def test_shapes(self):
        rng = np.random.default_rng(0)
        capture, _ = _capture(rng, [10.3, 90.8])
        assert capture.n_antennas == 3
        assert capture.n_users == 2
        assert capture.samples.shape[0] == 3

    def test_channel_matrix_shape_checked(self):
        rng = np.random.default_rng(1)
        radio = _radio(rng, 5.0)
        with pytest.raises(ValueError, match="users"):
            receive_multiantenna(
                PARAMS, [(radio, np.zeros(2, dtype=int))], np.ones((2, 3)), rng=rng
            )


class TestZfDecoder:
    def test_two_users_three_antennas(self):
        rng = np.random.default_rng(2)
        capture, streams = _capture(rng, [10.0, 90.0])  # integer offsets
        decoder = ZfMimoDecoder(PARAMS)
        positions, symbols = decoder.decode(capture, streams[0].size)
        assert symbols.shape[0] == 2
        # Match decoded streams to ground truth by offset.
        accuracies = []
        for k, mu in enumerate(positions):
            truth_idx = int(np.argmin([abs(mu - 10.0), abs(mu - 90.0)]))
            accuracies.append(np.mean(symbols[k] == streams[truth_idx]))
        assert np.mean(accuracies) > 0.9

    def test_antenna_cap_enforced(self):
        rng = np.random.default_rng(3)
        capture, streams = _capture(rng, [10.0, 60.0, 120.0, 200.0], n_antennas=3)
        decoder = ZfMimoDecoder(PARAMS)
        with pytest.raises(ValueError, match="antenna"):
            decoder.decode(capture, streams[0].size)

    def test_estimate_mixing_positions(self):
        rng = np.random.default_rng(4)
        capture, _ = _capture(rng, [20.4, 130.7])
        decoder = ZfMimoDecoder(PARAMS)
        positions, h = decoder.estimate_mixing(capture)
        assert h.shape == (3, positions.size)
        assert sorted(np.round(positions, 1)) == pytest.approx([20.4, 130.7], abs=0.2)


class TestChoirMultiantenna:
    def test_majority_vote_improves_or_matches(self):
        rng = np.random.default_rng(5)
        capture, streams = _capture(
            rng, [15.3, 120.8], n_antennas=3, snr_db=8.0, delays=[2.0, 5.0]
        )
        decoder = ChoirDecoder(PARAMS, rng=rng)
        combined = decode_choir_multiantenna(decoder, capture, streams[0].size)
        assert len(combined) >= 2
        total = 0.0
        for du in combined:
            best = max(np.mean(du.symbols == s) for s in streams)
            total += best
        assert total / len(combined) > 0.85

    def test_empty_when_nothing_detected(self):
        rng = np.random.default_rng(6)
        noise = (rng.normal(size=(2, 20 * 256)) + 1j * rng.normal(size=(2, 20 * 256))) / np.sqrt(2)
        from repro.mimo.array import MultiAntennaCapture

        capture = MultiAntennaCapture(
            samples=noise,
            params=PARAMS,
            channel_matrix=np.zeros((2, 0), dtype=complex),
            states=(),
            symbols=(),
        )
        decoder = ChoirDecoder(PARAMS, threshold_snr=6.0, rng=rng)
        assert decode_choir_multiantenna(decoder, capture, 4) == []
