"""KernelProfiler: self-time accounting, state round-trips, exports."""

import json

from repro.gateway.telemetry import Telemetry
from repro.profile import KernelProfiler, shape_bucket
from repro.profile.profiler import PROFILE_FORMAT, UNTRACKED


def busy(profiler, name, shape="", children=()):
    """Open a frame, recurse into children, close it."""
    with profiler.kernel(name, shape):
        for child in children:
            busy(profiler, *child)


class TestShapeBucket:
    def test_powers_of_two_are_fixed_points(self):
        for n in (1, 2, 64, 1024):
            assert shape_bucket(n) == n

    def test_rounds_up(self):
        assert shape_bucket(3) == 4
        assert shape_bucket(65) == 128
        assert shape_bucket(1025) == 2048

    def test_degenerate_sizes(self):
        assert shape_bucket(0) == 1
        assert shape_bucket(-5) == 1


class TestAccounting:
    def test_stats_row_shape(self):
        profiler = KernelProfiler()
        with profiler.kernel("k", "sf7", fft_count=1, fft_points=128,
                             bytes_touched=32):
            pass
        row = profiler.stats()[("k", "sf7")]
        assert set(row) == {
            "calls", "wall_s", "max_wall_s",
            "fft_count", "fft_points", "bytes_touched",
        }
        assert row["calls"] == 1
        assert row["wall_s"] >= 0.0
        assert row["max_wall_s"] >= row["wall_s"] / max(row["calls"], 1)

    def test_self_time_is_additive(self):
        # Nested frames subtract child elapsed from the parent, so the
        # summed self time across the table never exceeds the root's
        # elapsed wall time.
        profiler = KernelProfiler()
        busy(profiler, "root", "", [("a",), ("b", "", [("c",)])])
        state = profiler.state()
        assert profiler.total_wall_s() <= state["root_wall_s"] + 1e-9
        assert state["roots"] == 1

    def test_paths_record_the_stack(self):
        profiler = KernelProfiler()
        busy(profiler, "root", "", [("a",), ("b", "", [("c",)])])
        assert set(profiler.state()["paths"]) == {
            "root", "root;a", "root;b", "root;b;c",
        }

    def test_kernel_wall_sums_across_shapes(self):
        profiler = KernelProfiler()
        for shape in ("sf7", "sf8"):
            with profiler.kernel("k", shape):
                pass
        assert profiler.kernel_wall_s("k") >= 0.0
        assert len(profiler) == 2

    def test_add_outside_any_frame_lands_on_untracked(self):
        profiler = KernelProfiler()
        profiler.add(fft_count=4, fft_points=512)
        row = profiler.stats()[(UNTRACKED, "")]
        assert row["fft_count"] == 4
        assert row["calls"] == 0  # no timed invocation, just work

    def test_add_cpu_accumulates(self):
        profiler = KernelProfiler()
        profiler.add_cpu(0.25)
        profiler.add_cpu(0.5)
        assert profiler.cpu_s == 0.75


class TestPortableState:
    def test_state_is_json_round_trippable(self):
        profiler = KernelProfiler()
        busy(profiler, "root", "sf7", [("a", "C64")])
        state = json.loads(json.dumps(profiler.state()))
        assert state["format"] == PROFILE_FORMAT
        assert "a|C64" in state["kernels"]
        assert "root|sf7" in state["kernels"]

    def test_merge_state_sums_counts_and_maxes_max(self):
        a, b = KernelProfiler(), KernelProfiler()
        for p in (a, b):
            with p.kernel("k", "sf7", fft_count=2):
                pass
        sa, sb = a.state(), b.state()
        a.merge_state(sb)
        row = a.stats()[("k", "sf7")]
        assert row["calls"] == 2
        assert row["fft_count"] == 4
        assert row["max_wall_s"] == max(
            sa["kernels"]["k|sf7"]["max_wall_s"],
            sb["kernels"]["k|sf7"]["max_wall_s"],
        )
        merged = a.state()
        assert merged["roots"] == 2

    def test_merge_instance_equivalent_to_merge_state(self):
        a, b = KernelProfiler(), KernelProfiler()
        with b.kernel("k"):
            pass
        a.merge(b)
        assert a.stats()[("k", "")]["calls"] == 1

    def test_merge_into_empty_reproduces_source(self):
        # The executor propagation path: a job-local profiler's state
        # folded into a fresh run-level one must lose nothing.
        src, dst = KernelProfiler(), KernelProfiler()
        busy(src, "decode.window", "sf7", [("dechirp", "N128")])
        src.add_cpu(0.1)
        dst.merge_state(src.state())
        assert dst.state() == src.state()


class TestExports:
    def test_collapsed_stack_format(self):
        profiler = KernelProfiler()
        busy(profiler, "root", "", [("a",)])
        text = profiler.collapsed()
        assert text.endswith("\n")
        lines = text.strip().splitlines()
        assert lines == sorted(lines)
        for line in lines:
            path, _, micros = line.rpartition(" ")
            assert path in ("root", "root;a")
            assert int(micros) >= 1

    def test_chrome_events_widths_nest(self):
        profiler = KernelProfiler()
        busy(profiler, "root", "", [("a",), ("b",)])
        events = profiler.chrome_events(pid=7)
        assert events[0]["ph"] == "M"
        frames = {e["name"]: e for e in events if e["ph"] == "X"}
        assert set(frames) == {"root", "a", "b"}
        # Children tile inside the parent strip.
        root = frames["root"]
        for child in ("a", "b"):
            assert frames[child]["ts"] >= root["ts"]
            assert (frames[child]["ts"] + frames[child]["dur"]
                    <= root["ts"] + root["dur"] + 1e-6)

    def test_fold_into_telemetry(self):
        profiler = KernelProfiler()
        with profiler.kernel("k", "sf7", fft_count=2, fft_points=256,
                             bytes_touched=64):
            pass
        telemetry = Telemetry()
        profiler.fold_into(telemetry)
        snap = telemetry.snapshot()
        assert snap["profile.kernel.k.sf7.calls"]["value"] == 1
        assert snap["profile.kernel.k.sf7.ffts"]["value"] == 2
        assert snap["profile.kernel.k.sf7.fft_points"]["value"] == 256
        assert snap["profile.kernel.k.sf7.bytes"]["value"] == 64
        hist = snap["profile.kernel.k.sf7.wall_s"]
        assert hist["count"] == 1
        assert abs(hist["total_s"] - profiler.kernel_wall_s("k")) < 1e-9
