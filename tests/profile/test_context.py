"""Ambient profiler context: install/no-op semantics and isolation."""

import threading

from repro.profile import KernelProfiler
from repro.profile import context as profile_context


class TestAmbientInstall:
    def test_inactive_by_default(self):
        assert profile_context.current() is None
        assert not profile_context.profile_active()

    def test_use_profiler_installs_and_restores(self):
        profiler = KernelProfiler()
        with profile_context.use_profiler(profiler):
            assert profile_context.current() is profiler
            assert profile_context.profile_active()
        assert profile_context.current() is None

    def test_use_profiler_none_is_allowed(self):
        # One `with` statement serves both the profiled and unprofiled
        # paths; None just leaves profiling off.
        with profile_context.use_profiler(None):
            assert profile_context.current() is None
            with profile_context.kernel("anything"):
                pass  # must not raise

    def test_nested_install_restores_outer(self):
        outer, inner = KernelProfiler(), KernelProfiler()
        with profile_context.use_profiler(outer):
            with profile_context.use_profiler(inner):
                assert profile_context.current() is inner
            assert profile_context.current() is outer


class TestAmbientRecording:
    def test_kernel_records_into_installed_profiler(self):
        profiler = KernelProfiler()
        with profile_context.use_profiler(profiler):
            with profile_context.kernel("k", "sf7", fft_count=2, fft_points=256):
                pass
        stats = profiler.stats()
        assert stats[("k", "sf7")]["calls"] == 1
        assert stats[("k", "sf7")]["fft_count"] == 2
        assert stats[("k", "sf7")]["fft_points"] == 256

    def test_kernel_noop_without_profiler(self):
        # The profiling-off path: the block still runs, nothing records.
        ran = False
        with profile_context.kernel("k"):
            ran = True
        assert ran

    def test_add_attributes_to_innermost_frame(self):
        profiler = KernelProfiler()
        with profile_context.use_profiler(profiler):
            with profile_context.kernel("outer"):
                with profile_context.kernel("inner"):
                    profile_context.add(fft_count=3, bytes_touched=64)
        stats = profiler.stats()
        assert stats[("inner", "")]["fft_count"] == 3
        assert stats[("inner", "")]["bytes_touched"] == 64
        assert stats[("outer", "")]["fft_count"] == 0

    def test_add_noop_without_profiler(self):
        profile_context.add(fft_count=1)  # must not raise

    def test_new_thread_does_not_inherit_profiler(self):
        # ContextVar semantics: a worker thread starts with a fresh
        # context, so a run-level profiler never leaks across threads
        # unless explicitly installed there.
        profiler = KernelProfiler()
        seen = []
        with profile_context.use_profiler(profiler):
            t = threading.Thread(
                target=lambda: seen.append(profile_context.current())
            )
            t.start()
            t.join()
        assert seen == [None]
