"""Run manifests: flattening, write/load round-trip, format guards."""

import json

import pytest

from repro.gateway.telemetry import Telemetry
from repro.profile import KernelProfiler, build_manifest, load_manifest
from repro.profile.manifest import (
    MANIFEST_FORMAT,
    profiler_metrics,
    resource_metrics,
    telemetry_metrics,
)
from repro.profile.resources import ResourceAccountant


def sample_telemetry() -> Telemetry:
    telemetry = Telemetry()
    telemetry.counter("gateway.packets_decoded").inc(5)
    telemetry.gauge("ring.occupancy").set(3)
    telemetry.histogram("decode.decode_s").record(0.01)
    telemetry.histogram("decode.decode_s").record(0.03)
    return telemetry


def sample_profiler() -> KernelProfiler:
    profiler = KernelProfiler()
    with profiler.kernel("decode.window", "sf7", fft_count=2, fft_points=256):
        pass
    return profiler


class TestFlattening:
    def test_telemetry_metrics_explode_by_kind(self):
        metrics = telemetry_metrics(sample_telemetry().snapshot())
        assert metrics["gateway.packets_decoded"] == 5.0
        assert metrics["ring.occupancy"] == 3.0
        assert metrics["ring.occupancy.peak"] == 3.0
        assert metrics["decode.decode_s.count"] == 2.0
        assert abs(metrics["decode.decode_s.total_s"] - 0.04) < 1e-9
        assert "decode.decode_s.p95_s" in metrics

    def test_skip_prefixes_drop_families(self):
        metrics = telemetry_metrics(
            sample_telemetry().snapshot(), skip_prefixes=("decode.",)
        )
        assert not any(name.startswith("decode.") for name in metrics)

    def test_profiler_metrics_use_dotted_shape(self):
        metrics = profiler_metrics(sample_profiler().state())
        assert "profile.kernel.decode.window.sf7.wall_s" in metrics
        assert metrics["profile.kernel.decode.window.sf7.calls"] == 1.0
        assert metrics["profile.kernel.decode.window.sf7.ffts"] == 2.0

    def test_resource_metrics(self):
        with ResourceAccountant() as accountant:
            pass
        metrics = resource_metrics(accountant.summary.to_dict())
        assert set(metrics) == {
            "resources.wall_s", "resources.cpu_s",
            "resources.peak_rss_kb", "resources.alloc_peak_kb",
        }


class TestBuildManifest:
    def test_accepts_live_objects(self):
        with ResourceAccountant() as accountant:
            pass
        manifest = build_manifest(
            "gateway",
            {"channels": 8},
            seed=42,
            telemetry=sample_telemetry(),
            profiler=sample_profiler(),
            resources=accountant.summary,
            extra_metrics={"gateway.realtime_factor": 0.5},
        )
        assert manifest.kind == "gateway"
        assert manifest.seed == 42
        assert manifest.config == {"channels": 8}
        assert manifest.metrics["gateway.realtime_factor"] == 0.5
        assert manifest.metrics["resources.wall_s"] >= 0.0
        assert "profile.kernel.decode.window.sf7.wall_s" in manifest.metrics
        assert manifest.kernels["format"] == "repro-profile/v1"

    def test_accepts_prebuilt_mappings(self):
        # The executor/campaign path hands over already-taken snapshots.
        manifest = build_manifest(
            "campaign",
            {},
            telemetry=sample_telemetry().snapshot(),
            profiler=sample_profiler().state(),
        )
        assert manifest.telemetry is not None
        assert "decode.window|sf7" in manifest.kernels["kernels"]

    def test_kernel_rows_not_double_counted(self):
        # When a profiler state is attached, telemetry's folded
        # profile.kernel.* family must be skipped from the metric table
        # (the profiler section is authoritative).
        telemetry = sample_telemetry()
        profiler = sample_profiler()
        profiler.fold_into(telemetry)
        manifest = build_manifest(
            "gateway", {}, telemetry=telemetry, profiler=profiler
        )
        kernel_rows = [
            name for name in manifest.metrics
            if name.startswith("profile.kernel.decode.window.sf7.")
        ]
        assert sorted(kernel_rows) == [
            "profile.kernel.decode.window.sf7.calls",
            "profile.kernel.decode.window.sf7.ffts",
            "profile.kernel.decode.window.sf7.wall_s",
        ]


class TestRoundTrip:
    def test_write_load(self, tmp_path):
        path = tmp_path / "manifest.json"
        manifest = build_manifest(
            "gateway", {"duration": 1.0}, seed=7,
            telemetry=sample_telemetry(), profiler=sample_profiler(),
        )
        manifest.write(path)
        loaded = load_manifest(path)
        assert loaded.format == MANIFEST_FORMAT
        assert loaded.kind == "gateway"
        assert loaded.seed == 7
        assert loaded.metrics == manifest.metrics
        assert loaded.config == {"duration": 1.0}

    def test_manifest_json_is_sorted_and_tagged(self, tmp_path):
        path = tmp_path / "manifest.json"
        build_manifest("server", {}).write(path)
        data = json.loads(path.read_text())
        assert data["format"] == MANIFEST_FORMAT
        assert list(data) == sorted(data)
        assert data["version"]  # package version always stamped
        assert "python" in data["platform"]

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "not_manifest.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValueError, match="not a repro run manifest"):
            load_manifest(path)
