"""diff_metrics: direction inference, verdicts, exit codes, rendering."""

from repro.profile.diff import (
    DiffReport,
    diff_metrics,
    format_compare_line,
    format_delta_line,
    metric_direction,
)


class TestDirectionInference:
    def test_seconds_and_bytes_are_lower_is_better(self):
        for name in ("decode.decode_s.total_s", "resources.peak_rss_kb",
                     "profile.kernel.dechirp.sf7.wall_s", "ring.bytes"):
            assert metric_direction(name) == "lower"

    def test_loss_tokens_are_lower_is_better(self):
        for name in ("packets_dropped", "crc_errors", "ring.occupancy.peak",
                     "pool.queue_depth.peak"):
            assert metric_direction(name) == "lower"

    def test_throughput_tokens_are_higher_is_better(self):
        for name in ("gateway.realtime_factor", "choir.delivery_rate",
                     "gateway.packets_decoded"):
            assert metric_direction(name) == "higher"

    def test_higher_tokens_beat_lower_suffixes(self):
        # "..._s" suffix must not misread a rate-of-decoded metric.
        assert metric_direction("decoded_frames") == "higher"

    def test_unrecognized_is_informational(self):
        assert metric_direction("gateway.windows") == "info"


class TestVerdicts:
    def test_lower_is_better_thresholds(self):
        report = diff_metrics(
            {"a_s": 1.0, "b_s": 1.0, "c_s": 1.0},
            {"a_s": 1.2, "b_s": 1.3, "c_s": 0.7},
            tolerance=0.25,
        )
        verdicts = {d.name: d.verdict for d in report.deltas}
        assert verdicts == {"a_s": "ok", "b_s": "slower", "c_s": "faster"}

    def test_higher_is_better_mirrors(self):
        report = diff_metrics(
            {"x.delivery_rate": 1.0, "y.delivery_rate": 1.0},
            {"x.delivery_rate": 0.7, "y.delivery_rate": 1.3},
            tolerance=0.25,
        )
        verdicts = {d.name: d.verdict for d in report.deltas}
        assert verdicts["x.delivery_rate"] == "slower"
        assert verdicts["y.delivery_rate"] == "faster"

    def test_info_metrics_never_gate(self):
        report = diff_metrics({"windows": 10.0}, {"windows": 1000.0})
        assert report.deltas[0].verdict == "ok"
        assert report.exit_code() == 0

    def test_slack_is_absolute_grace(self):
        # 1ms over a 1ms baseline is 2x, but within a 5ms slack.
        report = diff_metrics(
            {"tiny_s": 0.001}, {"tiny_s": 0.002}, tolerance=0.25, slack=0.005
        )
        assert report.deltas[0].verdict == "ok"

    def test_missing_and_new_keys(self):
        report = diff_metrics({"gone_s": 1.0}, {"fresh_s": 1.0})
        assert [d.verdict for d in report.deltas] == ["missing-key", "new-key"]

    def test_direction_override_forces_lower(self):
        report = diff_metrics(
            {"delivery_rate": 1.0},
            {"delivery_rate": 2.0},
            tolerance=0.25,
            direction=lambda name: "lower",
        )
        assert report.deltas[0].verdict == "slower"


class TestExitCodes:
    def test_clean_report(self):
        report = diff_metrics({"a_s": 1.0}, {"a_s": 1.0})
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 0

    def test_regression_fails(self):
        report = diff_metrics({"a_s": 1.0}, {"a_s": 10.0})
        assert report.exit_code() == 1

    def test_missing_key_fails_only_strict(self):
        report = diff_metrics({"a_s": 1.0}, {})
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1


class TestRendering:
    def delta(self, **overrides):
        report = diff_metrics(
            {"latency_s": 0.010}, {"latency_s": 0.020}, tolerance=0.25
        )
        return report.deltas[0]

    def test_compare_line_is_byte_compatible(self):
        # The historical bench_report --compare format, to the byte.
        line = format_compare_line(self.delta())
        assert line == (
            "  FAIL latency_s: 20.00ms (baseline 10.00ms, limit 12.50ms)"
        )

    def test_compare_line_missing_key(self):
        report = diff_metrics({"latency_s": 0.010}, {})
        line = format_compare_line(report.deltas[0])
        assert line == "  FAIL latency_s: missing from candidate"

    def test_delta_line_carries_ratio(self):
        line = format_delta_line(self.delta())
        assert "SLOWER" in line and "(2.00x)" in line

    def test_lines_hide_ok_by_default(self):
        report = diff_metrics(
            {"a_s": 1.0, "b_s": 1.0}, {"a_s": 1.0, "b_s": 9.0}
        )
        assert len(report.lines()) == 1
        assert len(report.lines(show_ok=True)) == 2

    def test_summary_tally(self):
        report = diff_metrics(
            {"a_s": 1.0, "b_s": 1.0, "c_s": 1.0},
            {"a_s": 9.0, "b_s": 1.0, "d_s": 1.0},
        )
        summary = report.summary()
        assert "1 slower" in summary
        assert "1 missing" in summary and "1 new" in summary

    def test_report_groupings(self):
        report = diff_metrics(
            {"a_s": 1.0, "b_s": 1.0, "c_s": 1.0},
            {"a_s": 9.0, "b_s": 0.1, "d_s": 1.0},
        )
        assert isinstance(report, DiffReport)
        assert [d.name for d in report.regressions] == ["a_s"]
        assert [d.name for d in report.improvements] == ["b_s"]
        assert [d.name for d in report.missing] == ["c_s"]
        assert [d.name for d in report.new] == ["d_s"]
