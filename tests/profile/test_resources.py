"""ResourceAccountant: bracketing, opt-in allocation tracing, round-trip."""

import tracemalloc

import pytest

from repro.profile.resources import (
    ResourceAccountant,
    ResourceSummary,
    peak_rss_kb,
    process_cpu,
    summary_from_dict,
)


class TestBracket:
    def test_start_stop_reports_costs(self):
        accountant = ResourceAccountant().start()
        sum(i * i for i in range(20000))
        summary = accountant.stop()
        assert summary.wall_s >= 0.0
        assert summary.cpu_s >= 0.0
        assert summary.peak_rss_kb > 0  # Linux reports real peaks
        assert summary.alloc_peak_kb == 0.0
        assert summary.top_allocations == []

    def test_context_manager_retains_summary(self):
        with ResourceAccountant() as accountant:
            pass
        assert isinstance(accountant.summary, ResourceSummary)

    def test_stop_before_start_raises(self):
        with pytest.raises(RuntimeError, match="before start"):
            ResourceAccountant().stop()

    def test_utilization(self):
        assert ResourceSummary(wall_s=2.0, cpu_s=4.0, peak_rss_kb=1).utilization == 2.0
        assert ResourceSummary(wall_s=0.0, cpu_s=1.0, peak_rss_kb=1).utilization == 0.0


class TestAllocationTracing:
    def test_opt_in_records_top_sites(self):
        with ResourceAccountant(alloc_top_n=3) as accountant:
            sink = [bytearray(4096) for _ in range(64)]
        del sink
        summary = accountant.summary
        assert summary.alloc_peak_kb > 0.0
        assert 0 < len(summary.top_allocations) <= 3
        site = summary.top_allocations[0]
        assert ":" in site.site and site.size_kb > 0.0
        # Opt-in tracing must not leak past the bracket.
        assert not tracemalloc.is_tracing()

    def test_inner_accountant_leaves_outer_tracing_running(self):
        tracemalloc.start()
        try:
            with ResourceAccountant(alloc_top_n=2):
                pass
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()


class TestSummaryRoundTrip:
    def test_to_dict_from_dict(self):
        with ResourceAccountant(alloc_top_n=2) as accountant:
            sink = [bytearray(2048) for _ in range(32)]
        del sink
        state = accountant.summary.to_dict()
        rehydrated = summary_from_dict(state)
        assert rehydrated == accountant.summary
        assert rehydrated.to_dict() == state

    def test_from_partial_dict_defaults(self):
        summary = summary_from_dict({"wall_s": 1.5})
        assert summary.wall_s == 1.5
        assert summary.cpu_s == 0.0
        assert summary.top_allocations == []


class TestWrappers:
    def test_process_cpu_monotone(self):
        before = process_cpu()
        sum(i * i for i in range(20000))
        assert process_cpu() >= before

    def test_peak_rss_positive_on_posix(self):
        assert peak_rss_kb() > 0
