"""Profiled gateway runs: coverage, executor parity, resource fields.

The coverage test is the PR's acceptance criterion: the per-kernel wall
sums rooted at ``decode.window`` must explain the telemetry-measured
decode time to within 20% -- if an instrumented kernel is dropped or a
frame leaks, the two totals diverge.
"""

from repro.gateway import Gateway, GatewayConfig, SyntheticTrafficSource
from repro.scenario.campaign import run_variant
from repro.scenario.spec import (
    GeometrySpec,
    PlanSpec,
    ScenarioSpec,
    SweepSpec,
    TrafficSpec,
)
from tests.gateway.conftest import PARAMS, PAYLOAD_LEN, periodic_node


def run_profiled(**overrides):
    nodes = overrides.pop(
        "nodes",
        [periodic_node(node_id=0), periodic_node(node_id=1, period_s=0.4)],
    )
    source = SyntheticTrafficSource(
        PARAMS, nodes, duration_s=1.0, payload_len=PAYLOAD_LEN, rng=0
    )
    config = GatewayConfig(
        params=PARAMS,
        payload_len=PAYLOAD_LEN,
        executor=overrides.pop("executor", "serial"),
        seed=0,
        profile=overrides.pop("profile", True),
        **overrides,
    )
    return Gateway(config).run(source)


def decode_window_wall_s(profile_state) -> float:
    """Self time summed over every path rooted at decode.window."""
    return sum(
        wall
        for path, wall in profile_state["paths"].items()
        if path == "decode.window" or path.startswith("decode.window;")
    )


class TestCoverage:
    def test_kernel_walls_explain_decode_time(self):
        report = run_profiled()
        assert report.packets_decoded > 0
        assert report.profile is not None
        covered = decode_window_wall_s(report.profile.state())
        measured = report.telemetry["decode.decode_s"]["total_s"]
        assert measured > 0.0
        assert abs(covered - measured) <= 0.20 * measured

    def test_profile_folded_into_telemetry(self):
        report = run_profiled()
        sf = f"sf{PARAMS.spreading_factor}"
        key = f"profile.kernel.decode.window.{sf}.calls"
        assert report.telemetry[key]["value"] == report.packets_decoded

    def test_report_renders_profile_section(self):
        text = run_profiled().summary()
        assert "kernel profile" in text
        assert "decode.window" in text


class TestProfileOff:
    def test_default_run_carries_no_profile(self):
        report = run_profiled(profile=False)
        assert report.profile is None
        assert report.resources is None
        assert not any(
            name.startswith("profile.kernel.") for name in report.telemetry
        )


class TestExecutorParity:
    def test_kernel_call_counts_identical_serial_vs_thread(self):
        # Wall times are machine noise, but the (kernel, shape) table's
        # call counts are deterministic: the same air must run the same
        # kernels the same number of times under every executor.
        serial = run_profiled(executor="serial")
        threaded = run_profiled(executor="thread", n_workers=4)
        calls = lambda report: {  # noqa: E731
            key: stat["calls"] for key, stat in report.profile.stats().items()
        }
        assert calls(serial) == calls(threaded)


class TestResources:
    def test_resource_summary_populated(self):
        report = run_profiled()
        assert report.resources is not None
        assert report.resources.wall_s > 0.0
        assert report.resources.cpu_s > 0.0
        assert report.resources.peak_rss_kb > 0
        assert report.resources.alloc_peak_kb == 0.0

    def test_profile_alloc_opt_in(self):
        report = run_profiled(profile_alloc=3)
        assert report.resources.alloc_peak_kb > 0.0
        assert 0 < len(report.resources.top_allocations) <= 3


class TestCampaignResourceCurve:
    def test_variant_result_carries_resource_sample(self):
        spec = ScenarioSpec(
            name="profile-test",
            geometry=GeometrySpec(layout="fixed-snr", snr_db=15.0),
            traffic=TrafficSpec(
                period_s=3.0, payload_len=8, spreading_factors=(7,)
            ),
            plan=PlanSpec(n_channels=2),
            sweep=SweepSpec(node_counts=(4,), duration_s=1.0, seed=11),
        )
        result, _ = run_variant(spec, 4, "choir", duration_s=1.0, seed=11)
        assert result.cpu_s > 0.0
        assert result.max_rss_kb > 0
        as_dict = result.to_dict()
        assert as_dict["cpu_s"] == result.cpu_s
        assert as_dict["max_rss_kb"] == result.max_rss_kb
