"""CLI surface: `--profile-out` manifests and the `repro diff` gate."""

import json

import pytest

from repro.cli import main
from repro.profile import load_manifest


@pytest.fixture(scope="module")
def manifest_path(tmp_path_factory):
    """One profiled gateway CLI run shared across the module's tests."""
    out_dir = tmp_path_factory.mktemp("profile_cli")
    manifest = out_dir / "manifest.json"
    stacks = out_dir / "stacks.txt"
    code = main([
        "gateway",
        "--duration", "0.6",
        "--nodes", "1",
        "--executor", "serial",
        "--profile-out", str(manifest),
        "--stacks-out", str(stacks),
    ])
    assert code == 0
    return manifest


class TestGatewayProfileOut:
    def test_manifest_is_loadable_and_complete(self, manifest_path):
        manifest = load_manifest(manifest_path)
        assert manifest.kind == "gateway"
        assert manifest.seed == 0
        assert manifest.config["duration_s"] == 0.6
        assert any(
            name.startswith("profile.kernel.decode.window.")
            for name in manifest.metrics
        )
        assert "decode.decode_s.total_s" in manifest.metrics
        assert manifest.metrics["resources.peak_rss_kb"] > 0

    def test_stacks_file_is_flamegraph_input(self, manifest_path):
        stacks = manifest_path.parent / "stacks.txt"
        lines = stacks.read_text().strip().splitlines()
        assert lines
        for line in lines:
            path, _, micros = line.rpartition(" ")
            assert path and int(micros) >= 1


class TestDiffCommand:
    def test_self_diff_is_clean(self, manifest_path, capsys):
        code = main(["diff", str(manifest_path), str(manifest_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "no regressions" in out
        assert "0 slower" in out

    def test_injected_slowdown_fails(self, manifest_path, tmp_path, capsys):
        # Double every kernel wall time in a copied manifest: `repro
        # diff` must flag the regression and exit nonzero.
        data = json.loads(manifest_path.read_text())
        for name in data["metrics"]:
            if name.startswith("profile.kernel.") and name.endswith(".wall_s"):
                data["metrics"][name] *= 2.0
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(data))
        code = main(["diff", str(manifest_path), str(slow), "--slack", "0"])
        assert code == 1
        captured = capsys.readouterr()
        assert "SLOWER" in captured.out
        assert "REGRESSION" in captured.err

    def test_missing_metric_fails_only_strict(self, manifest_path, tmp_path, capsys):
        data = json.loads(manifest_path.read_text())
        dropped = next(
            name for name in sorted(data["metrics"])
            if name.startswith("profile.kernel.")
        )
        del data["metrics"][dropped]
        pruned = tmp_path / "pruned.json"
        pruned.write_text(json.dumps(data))
        assert main(["diff", str(manifest_path), str(pruned)]) == 0
        capsys.readouterr()
        code = main([
            "diff", str(manifest_path), str(pruned), "--assert-no-regression"
        ])
        assert code == 1
        assert "missing" in capsys.readouterr().err

    def test_unreadable_manifest_is_usage_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        code = main(["diff", str(missing), str(missing)])
        assert code == 2
        assert "diff error" in capsys.readouterr().err
