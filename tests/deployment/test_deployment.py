"""Tests for campus geometry and testbed placement."""

import numpy as np
import pytest

from repro.deployment import Building, CampusTestbed, Position


class TestPosition:
    def test_distance(self):
        a = Position(0.0, 0.0, 0.0)
        b = Position(3.0, 4.0, 0.0)
        assert a.distance_to(b) == pytest.approx(5.0)

    def test_distance_3d(self):
        a = Position(0.0, 0.0, 0.0)
        b = Position(0.0, 0.0, 10.0)
        assert a.distance_to(b) == pytest.approx(10.0)


class TestBuilding:
    def test_floor_position_in_footprint(self):
        building = Building(100.0, 200.0)
        pos = building.floor_position(0.5, 0.5, 2)
        assert building.contains(pos)
        assert pos.z == pytest.approx(2.5 * building.floor_height_m)

    def test_floor_position_validation(self):
        building = Building(0.0, 0.0)
        with pytest.raises(ValueError, match="u, v"):
            building.floor_position(1.5, 0.5, 0)
        with pytest.raises(ValueError, match="floor"):
            building.floor_position(0.5, 0.5, 4)

    def test_center(self):
        building = Building(0.0, 0.0, width_m=40.0, depth_m=95.0)
        assert building.center.x == pytest.approx(20.0)
        assert building.center.y == pytest.approx(47.5)

    def test_paper_footprint_defaults(self):
        building = Building(0.0, 0.0)
        assert building.width_m == 40.0
        assert building.depth_m == 95.0
        assert building.n_floors == 4


class TestCampusTestbed:
    def test_extent_matches_paper(self):
        testbed = CampusTestbed()
        assert testbed.extent_x_m == 3400.0
        assert testbed.extent_y_m == 3200.0

    def test_outdoor_nodes_in_bounds(self):
        testbed = CampusTestbed(rng_seed=0)
        nodes = testbed.place_outdoor_nodes(50)
        for node in nodes:
            assert 0.0 <= node.position.x <= testbed.extent_x_m
            assert 0.0 <= node.position.y <= testbed.extent_y_m

    def test_indoor_nodes_in_building(self):
        testbed = CampusTestbed(rng_seed=1)
        nodes = testbed.place_indoor_nodes(20, building_index=0)
        building = testbed.buildings[0]
        for node in nodes:
            assert building.contains(node.position)
            assert node.floor is not None

    def test_place_at_distance_exact(self):
        testbed = CampusTestbed(rng_seed=2)
        node = testbed.place_at_distance(0, 1500.0)
        ground = np.hypot(
            node.position.x - testbed.base_station.x,
            node.position.y - testbed.base_station.y,
        )
        assert ground == pytest.approx(1500.0)

    def test_snr_decreases_with_distance(self):
        testbed = CampusTestbed(rng_seed=3)
        near = testbed.place_at_distance(0, 200.0)
        far = testbed.place_at_distance(1, 2000.0)
        assert testbed.mean_snr_db(near) > testbed.mean_snr_db(far)

    def test_reproducible(self):
        a = CampusTestbed(rng_seed=5).place_outdoor_nodes(5)
        b = CampusTestbed(rng_seed=5).place_outdoor_nodes(5)
        assert all(x.position == y.position for x, y in zip(a, b))

    def test_packet_gain_varies(self):
        testbed = CampusTestbed(rng_seed=6)
        node = testbed.place_at_distance(0, 500.0)
        rng = np.random.default_rng(0)
        gains = [abs(testbed.packet_gain(node, rng=rng)) for _ in range(50)]
        assert np.std(gains) > 0
