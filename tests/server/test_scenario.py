"""Closed-loop acceptance E2E: the criteria ISSUE 7 names.

Two gateways with overlapping coverage hear a 4-node deployment; the
server must deliver every heard uplink exactly once, pick the true
max-SNR gateway per device, and move at least one device to a faster SF
and at least one to a slower SF via ADR downlinks -- identically under
all three ingest transports.
"""

import pytest

from repro.server.scenario import (
    INGEST_MODES,
    GatewayProfile,
    MultiGatewayPhy,
    overlapping_profiles,
    run_scenario,
)
from repro.mac.phy import SingleUserPhy, Transmission
from repro.phy.params import LoRaParams

DURATION_S = 60.0


@pytest.fixture(scope="module")
def reports():
    """One run per ingest transport over identical deployments."""
    return {
        mode: run_scenario(
            n_gateways=2, duration_s=DURATION_S, ingest=mode, seed=0
        )
        for mode in INGEST_MODES
    }


class TestAcceptance:
    def test_overlap_means_multiple_copies_per_uplink(self, reports):
        report = reports["serial"]
        # Both gateways hear every node (the far offset attenuates but
        # does not erase), so ingested copies exceed unique deliveries.
        assert report.server.n_ingested == 2 * report.server.n_delivered

    def test_exactly_once_delivery(self, reports):
        report = reports["serial"]
        seen = [
            (u.frame.device_addr, u.fcnt32) for u in report.server.delivered
        ]
        assert len(seen) == len(set(seen))
        assert report.server.n_delivered == len(seen)
        assert report.server.n_duplicates == report.server.n_delivered

    def test_best_gateway_matches_ground_truth(self, reports):
        report = reports["serial"]
        # The phy recorded per-gateway SNR truth; every delivered frame
        # must have been attributed to that node's max-SNR gateway.
        assert report.best_gateway_truth == {0: 0, 1: 1, 2: 0, 3: 1}
        for uplink in report.server.delivered:
            node = uplink.frame.device_addr
            assert uplink.frame.gateway_id == report.best_gateway_truth[node]

    def test_adr_moves_devices_both_directions(self, reports):
        report = reports["serial"]
        faster, slower = report.moved_faster(), report.moved_slower()
        assert len(faster) >= 1 and len(slower) >= 1
        # Strong-link nodes speed up, weak-link nodes slow down.
        assert faster == [0, 1]
        assert slower == [2, 3]
        assert all(report.final_sf[n] < 10 for n in faster)
        assert all(report.final_sf[n] > 10 for n in slower)
        assert report.n_commands >= len(faster) + len(slower)

    def test_transports_produce_identical_reports(self, reports):
        def fingerprint(report):
            return (
                report.server.n_ingested,
                report.server.n_delivered,
                report.final_sf,
                report.sf_trajectory,
                [
                    (u.frame.key, u.frame.gateway_id, u.fcnt32, u.verdict)
                    for u in report.server.delivered
                ],
            )

        serial = fingerprint(reports["serial"])
        assert fingerprint(reports["thread"]) == serial
        assert fingerprint(reports["async"]) == serial

    def test_session_accounting_clean(self, reports):
        report = reports["serial"].server
        assert report.n_devices == 4
        assert report.n_replays == 0
        assert report.n_resets == 0
        assert report.sessions_jsonl.count("\n") == 4


class TestGeometry:
    def test_round_robin_profiles(self):
        profiles = overlapping_profiles(2, [0, 1, 2, 3])
        assert profiles[0].offsets_db == {0: 0.0, 2: 0.0}
        assert profiles[1].offsets_db == {1: 0.0, 3: 0.0}
        assert profiles[0].offset_for(1) == -4.0

    def test_phy_rejects_duplicate_gateways(self):
        with pytest.raises(ValueError, match="duplicate"):
            MultiGatewayPhy(
                SingleUserPhy(LoRaParams()), [GatewayProfile(0), GatewayProfile(0)]
            )

    def test_phy_records_per_gateway_receptions(self):
        phy = MultiGatewayPhy(
            SingleUserPhy(LoRaParams()),
            [
                GatewayProfile(0, offsets_db={1: 0.0}, default_offset_db=-100.0),
                GatewayProfile(1, offsets_db={1: -3.0}, default_offset_db=-100.0),
            ],
        )
        decoded = phy.resolve(
            [Transmission(node_id=1, snr_db=0.0, n_payload_bits=64)]
        )
        assert decoded == {1}
        by_gateway = {r.gateway_id: r.snr_db for r in phy.last_receptions}
        assert by_gateway == {0: 0.0, 1: -3.0}

    def test_scenario_rejects_unknown_ingest(self):
        with pytest.raises(ValueError, match="ingest"):
            run_scenario(duration_s=1.0, ingest="carrier-pigeon")
