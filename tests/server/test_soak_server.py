"""Soak: the server's memory stays bounded on long, hostile streams.

Tier-1 runs a scaled-down stream; ``SOAK=1`` (``make soak``) runs the
full-length version.  Every unbounded-growth candidate is asserted
against its configured cap after a stream long enough to overflow all
of them many times over: dedup pending/done windows, the device
registry, the delivered log, and the downlink command queue (drained
periodically, as a live deployment would).
"""

import os

import pytest

from repro.server.frames import FCNT_PERIOD, UplinkFrame
from repro.server.server import NetworkServer, ServerConfig

SOAK = os.environ.get("SOAK", "") not in ("", "0")

#: Scaled for tier-1; the soak run is 50x longer.
N_FRAMES = 200_000 if SOAK else 20_000
N_DEVICES = 500
MAX_DEVICES = 100
MAX_PENDING = 256
DONE_WINDOW = 512
MAX_DELIVERED_LOG = 1000


def stream(n_frames):
    """Adversarial long stream: device churn, rollover, and duplicates."""
    for i in range(n_frames):
        addr = i % N_DEVICES
        fcnt = (i // N_DEVICES) % FCNT_PERIOD
        t = 0.001 * i
        # Two gateway copies per uplink keeps the dedup window busy.
        for gw in (0, 1):
            yield UplinkFrame(
                gateway_id=gw,
                device_addr=addr,
                fcnt=fcnt,
                snr_db=float(gw),
                received_s=t,
                seq=i,
            )


class TestBoundedMemory:
    def test_long_run_respects_every_cap(self):
        server = NetworkServer(
            ServerConfig(
                dedup_window_s=0.01,
                max_pending=MAX_PENDING,
                done_window=DONE_WINDOW,
                max_devices=MAX_DEVICES,
                max_delivered_log=MAX_DELIVERED_LOG,
                adr_initial_sf=10,
            )
        )
        drain_every = 10_000
        for i, frame in enumerate(stream(N_FRAMES)):
            server.handle_uplink(frame)
            if i % drain_every == 0:
                server.drain_commands()
                # Mid-flight: every structure within its bound.
                assert server._dedup.n_pending <= MAX_PENDING
                assert server._dedup.n_done <= DONE_WINDOW
                assert len(server._registry) <= MAX_DEVICES
                assert len(server.delivered()) <= MAX_DELIVERED_LOG
        server.drain_commands()
        report = server.finish()
        assert report.n_ingested == 2 * N_FRAMES
        assert report.n_delivered > 0
        assert server._dedup.n_pending == 0  # finish() flushed the window
        assert server._dedup.n_done <= DONE_WINDOW
        assert report.n_devices <= MAX_DEVICES
        assert len(report.delivered) <= MAX_DELIVERED_LOG
        # Churned devices were evicted, not accumulated.
        assert server._registry.n_evicted >= N_DEVICES - MAX_DEVICES

    def test_command_queue_drains_to_empty(self):
        server = NetworkServer(
            ServerConfig(dedup_window_s=0.0, adr_initial_sf=12)
        )
        for i in range(2000):
            server.handle_uplink(
                UplinkFrame(
                    gateway_id=0,
                    device_addr=i % 10,
                    fcnt=(i // 10) % FCNT_PERIOD,
                    snr_db=20.0,
                    received_s=0.001 * i,
                    seq=i,
                )
            )
        commands = server.drain_commands()
        assert commands  # strong links at SF12 produced ADR traffic
        assert server.drain_commands() == []

    @pytest.mark.skipif(not SOAK, reason="full soak only under SOAK=1")
    def test_telemetry_cardinality_bounded(self):
        # Instrument count must not grow with stream length -- only with
        # the (bounded) label space: per-gateway counters and fixed
        # server families.
        server = NetworkServer(
            ServerConfig(
                dedup_window_s=0.01,
                max_devices=MAX_DEVICES,
                max_delivered_log=MAX_DELIVERED_LOG,
            )
        )
        for frame in stream(50_000):
            server.handle_uplink(frame)
        server.finish()
        assert len(server.telemetry.snapshot()) < 30
