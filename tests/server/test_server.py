"""NetworkServer unit behavior: lifecycle, counters, telemetry, restore."""

import pytest

from repro.gateway.telemetry import Telemetry, parse_prometheus_text
from repro.server.frames import UplinkFrame
from repro.server.server import NetworkServer, ServerConfig


def frame(gw, addr=1, fcnt=0, snr=0.0, t=0.0, seq=0):
    return UplinkFrame(
        gateway_id=gw,
        device_addr=addr,
        fcnt=fcnt,
        snr_db=snr,
        received_s=t,
        seq=seq,
    )


def server(**kwargs):
    kwargs.setdefault("dedup_window_s", 0.05)
    return NetworkServer(ServerConfig(**kwargs))


class TestConfig:
    def test_rejects_unknown_drop_policy(self):
        with pytest.raises(ValueError, match="drop_policy"):
            ServerConfig(drop_policy="random")

    def test_rejects_bad_capacity_and_sf(self):
        with pytest.raises(ValueError, match="queue_capacity"):
            ServerConfig(queue_capacity=0)
        with pytest.raises(ValueError, match="adr_initial_sf"):
            ServerConfig(adr_initial_sf=6)


class TestUplinkPath:
    def test_ingest_counters_per_gateway(self):
        srv = server()
        srv.handle_uplink(frame(0, fcnt=0, t=0.0))
        srv.handle_uplink(frame(1, fcnt=0, t=0.0))
        srv.handle_uplink(frame(0, fcnt=1, t=1.0))
        assert srv.n_ingested == 3
        assert srv.telemetry.counter("ingest.frames").value == 3
        assert srv.telemetry.counter("gw0.ingest.frames").value == 2
        assert srv.telemetry.counter("gw1.ingest.frames").value == 1

    def test_two_gateway_copies_deliver_once(self):
        srv = server()
        srv.handle_uplink(frame(0, fcnt=0, snr=3.0, t=0.0))
        srv.handle_uplink(frame(1, fcnt=0, snr=9.0, t=0.0))
        report = srv.finish()
        assert report.n_ingested == 2
        assert report.n_delivered == 1
        assert report.n_duplicates == 1
        assert report.delivered[0].frame.gateway_id == 1  # best SNR won

    def test_replay_reported_but_not_logged(self):
        srv = server()
        srv.handle_uplink(frame(0, fcnt=50, t=0.0))
        srv.handle_uplink(frame(0, fcnt=20, t=1.0))  # old counter
        report = srv.finish()
        assert report.n_replays == 1
        assert report.n_delivered == 1
        assert [u.frame.fcnt for u in report.delivered] == [50]
        assert srv.telemetry.counter("session.replay").value == 1

    def test_handle_uplink_after_finish_raises(self):
        srv = server()
        srv.handle_uplink(frame(0, fcnt=0, t=0.0))
        srv.finish()
        with pytest.raises(RuntimeError, match="finished"):
            srv.handle_uplink(frame(0, fcnt=1, t=1.0))

    def test_finish_flushes_open_window(self):
        srv = server(dedup_window_s=1000.0)
        srv.handle_uplink(frame(0, fcnt=0, t=0.0))
        assert srv.delivered() == []  # window still open
        report = srv.finish()
        assert report.n_delivered == 1

    def test_drain_commands_clears_queue(self):
        srv = server(adr_initial_sf=12)
        for i in range(4):
            srv.handle_uplink(frame(0, fcnt=i, snr=20.0, t=float(i)))
        srv.finish()
        commands = srv.drain_commands()
        assert commands  # strong link at SF12: upgrade issued
        assert srv.drain_commands() == []

    def test_delivered_log_bounded(self):
        srv = server(max_delivered_log=5)
        for i in range(50):
            srv.handle_uplink(frame(0, fcnt=i, t=float(i)))
        srv.finish()
        log = srv.delivered()
        assert len(log) == 5
        assert [u.frame.fcnt for u in log] == list(range(45, 50))


class TestTelemetryAbsorption:
    def test_gateway_state_namespaced(self):
        gw_telemetry = Telemetry()
        gw_telemetry.counter("ch3.sf8.decode.crc_ok").inc(7)
        srv = server()
        srv.absorb_gateway_telemetry(1, gw_telemetry.state())
        merged = srv.telemetry.counter("gw1.ch3.sf8.decode.crc_ok")
        assert merged.value == 7

    def test_absorbed_metrics_round_trip_prometheus(self):
        gw_telemetry = Telemetry()
        gw_telemetry.counter("ch3.sf8.decode.crc_ok").inc(7)
        srv = server()
        srv.absorb_gateway_telemetry(1, gw_telemetry.state())
        text = srv.telemetry.prometheus()
        samples = parse_prometheus_text(text)
        key = 'repro_decode_crc_ok_total{channel="3",gateway="1",sf="8"}'
        assert samples[key] == pytest.approx(7.0)

    def test_feed_drop_and_queue_depth_accounting(self):
        srv = server()
        srv.record_feed_drop(2, 3)
        srv.record_feed_drop(2)
        srv.record_queue_depth(11)
        assert srv.telemetry.counter("gw2.ingest.dropped").value == 4
        assert srv.telemetry.gauge("ingest.queue_depth").value == 11


class TestSessionRestore:
    def test_restore_then_continue(self):
        srv0 = server()
        srv0.handle_uplink(frame(0, addr=9, fcnt=100, t=0.0))
        snapshot = srv0.finish().sessions_jsonl

        srv1 = server()
        assert srv1.restore_sessions(snapshot) == 1
        state = srv1.session_state(9)
        assert state is not None and state["fcnt32"] == 100
        # The restored counter still gates replays.
        srv1.handle_uplink(frame(0, addr=9, fcnt=90, t=1.0))
        assert srv1.finish().n_replays == 1

    def test_unknown_session_state_is_none(self):
        assert server().session_state(404) is None
