"""Dedup edge cases the issue names: multi-gateway copies, rollover,
out-of-order arrival, bounded windows, late duplicates."""

import pytest

from repro.gateway.telemetry import Telemetry
from repro.server.dedup import FrameDeduplicator
from repro.server.frames import FCNT_PERIOD, UplinkFrame


def frame(gw, addr=1, fcnt=0, snr=0.0, t=0.0, seq=0):
    return UplinkFrame(
        gateway_id=gw,
        device_addr=addr,
        fcnt=fcnt,
        snr_db=snr,
        received_s=t,
        seq=seq,
    )


def drain(dedup, frames):
    out = []
    for f in frames:
        out.extend(dedup.offer(f))
    out.extend(dedup.flush())
    return out


class TestThreeGatewayCopies:
    def test_exactly_one_delivery_best_snr_wins(self):
        dedup = FrameDeduplicator(window_s=0.1)
        copies = [
            frame(0, snr=3.0, t=1.00),
            frame(1, snr=9.0, t=1.01),
            frame(2, snr=6.0, t=1.02),
        ]
        delivered = drain(dedup, copies)
        assert len(delivered) == 1
        assert delivered[0].best_gateway == 1
        assert delivered[0].n_copies == 3
        assert delivered[0].gateways == (0, 1, 2)
        assert delivered[0].first_seen_s == pytest.approx(1.00)

    def test_snr_tie_breaks_to_lower_gateway_id(self):
        dedup = FrameDeduplicator(window_s=0.1)
        delivered = drain(
            dedup,
            [frame(2, snr=5.0, t=1.0), frame(0, snr=5.0, t=1.01), frame(1, snr=5.0, t=1.02)],
        )
        assert len(delivered) == 1
        assert delivered[0].best_gateway == 0

    def test_tie_break_independent_of_arrival_order(self):
        copies = [frame(2, snr=5.0, t=1.0), frame(0, snr=5.0, t=1.0), frame(1, snr=5.0, t=1.0)]
        results = set()
        for order in ([0, 1, 2], [2, 1, 0], [1, 0, 2]):
            delivered = drain(
                FrameDeduplicator(window_s=0.1), [copies[i] for i in order]
            )
            results.add(delivered[0].best_gateway)
        assert results == {0}


class TestWindowSemantics:
    def test_emission_waits_for_watermark(self):
        dedup = FrameDeduplicator(window_s=0.5)
        assert dedup.offer(frame(0, fcnt=1, t=1.0)) == []
        # Watermark at 1.4: window for fcnt=1 (opened at 1.0) still open.
        assert dedup.offer(frame(0, fcnt=2, t=1.4)) == []
        # Watermark reaches 1.5: fcnt=1 matures, fcnt=2 still pending.
        out = dedup.offer(frame(0, fcnt=3, t=1.5))
        assert [d.frame.fcnt for d in out] == [1]
        assert [d.frame.fcnt for d in dedup.flush()] == [2, 3]

    def test_out_of_order_copy_within_window_still_merges(self):
        dedup = FrameDeduplicator(window_s=0.5)
        dedup.offer(frame(0, fcnt=1, snr=1.0, t=1.2))
        # A second gateway's copy arrives "earlier" in stream time (its
        # feed lags); it lands inside the window and merges.
        dedup.offer(frame(1, fcnt=1, snr=8.0, t=1.1))
        delivered = dedup.flush()
        assert len(delivered) == 1
        assert delivered[0].best_gateway == 1
        assert delivered[0].first_seen_s == pytest.approx(1.1)

    def test_late_duplicate_after_emission_suppressed(self):
        telemetry = Telemetry()
        dedup = FrameDeduplicator(window_s=0.1, telemetry=telemetry)
        dedup.offer(frame(0, fcnt=1, t=1.0))
        emitted = dedup.offer(frame(0, fcnt=2, t=2.0))  # matures fcnt=1
        assert [d.frame.fcnt for d in emitted] == [1]
        assert dedup.offer(frame(1, fcnt=1, t=2.01)) == []  # straggler copy
        assert telemetry.counter("dedup.late_duplicates").value == 1
        # Still only one delivery of fcnt=1 overall.
        assert [d.frame.fcnt for d in dedup.flush()] == [2]

    def test_distinct_devices_never_merge(self):
        dedup = FrameDeduplicator(window_s=0.5)
        dedup.offer(frame(0, addr=1, fcnt=5, t=1.0))
        dedup.offer(frame(0, addr=2, fcnt=5, t=1.0))
        assert len(dedup.flush()) == 2


class TestRollover:
    def test_fcnt_rollover_keys_stay_distinct(self):
        dedup = FrameDeduplicator(window_s=0.5)
        dedup.offer(frame(0, fcnt=FCNT_PERIOD - 1, t=1.0))
        dedup.offer(frame(0, fcnt=0, t=1.05))  # rolled over
        delivered = dedup.flush()
        assert [d.frame.fcnt for d in delivered] == [FCNT_PERIOD - 1, 0]


class TestBounds:
    def test_pending_cap_forces_oldest_out(self):
        telemetry = Telemetry()
        dedup = FrameDeduplicator(
            window_s=100.0, max_pending=4, telemetry=telemetry
        )
        for i in range(6):
            dedup.offer(frame(0, fcnt=i, t=1.0 + 0.01 * i))
        assert dedup.n_pending == 4
        assert telemetry.counter("dedup.evicted").value == 2
        # Evicted entries were emitted (oldest first), not lost.
        assert telemetry.counter("dedup.delivered").value == 2

    def test_done_window_bounded(self):
        dedup = FrameDeduplicator(window_s=0.0, done_window=8)
        for i in range(100):
            dedup.offer(frame(0, fcnt=i % FCNT_PERIOD, t=float(i)))
        dedup.flush()
        assert dedup.n_done <= 8

    def test_deterministic_emission_order(self):
        dedup = FrameDeduplicator(window_s=0.1)
        dedup.offer(frame(0, addr=5, fcnt=1, t=1.0))
        dedup.offer(frame(0, addr=3, fcnt=9, t=1.0))
        dedup.offer(frame(0, addr=4, fcnt=2, t=1.01))
        out = drain(dedup, [])
        assert [(d.frame.device_addr, d.frame.fcnt) for d in out] == [
            (3, 9),
            (5, 1),
            (4, 2),
        ]
