"""Ingest transports: deterministic merge, backpressure, drop accounting."""

import pytest

from repro.server.frames import UplinkFrame
from repro.server.ingest import (
    GatewayFeed,
    IngestPlane,
    ThreadedIngestor,
    merge_streams,
    run_streams,
    run_streams_async,
    run_streams_threaded,
)
from repro.server.server import NetworkServer, ServerConfig


def frame(gw, fcnt, t, addr=1, snr=0.0, seq=0):
    return UplinkFrame(
        gateway_id=gw,
        device_addr=addr,
        fcnt=fcnt,
        snr_db=snr,
        received_s=t,
        seq=seq,
    )


def make_streams(n_gateways=3, n_frames=40):
    """Per-gateway time-ordered streams with interleaved timestamps."""
    streams = {}
    for gw in range(n_gateways):
        streams[gw] = [
            frame(gw, fcnt=i, t=0.01 * i + 0.001 * gw, snr=float(gw), seq=i)
            for i in range(n_frames)
        ]
    return streams


def server(window_s=0.05, **kwargs):
    return NetworkServer(ServerConfig(dedup_window_s=window_s, **kwargs))


class TestMerge:
    def test_merge_is_global_time_order(self):
        streams = make_streams()
        merged = list(merge_streams([streams[g] for g in sorted(streams)]))
        keys = [(f.received_s, f.gateway_id, f.seq) for f in merged]
        assert keys == sorted(keys)

    def test_all_transports_agree(self):
        reports = {}
        for name, runner in (
            ("serial", lambda s, st: run_streams(s, [st[g] for g in sorted(st)])),
            ("thread", run_streams_threaded),
            ("async", run_streams_async),
        ):
            srv = server()
            runner(srv, make_streams())
            reports[name] = srv.finish()
        serial = reports.pop("serial")
        assert serial.n_delivered > 0
        for name, report in reports.items():
            assert report.n_ingested == serial.n_ingested, name
            assert report.n_delivered == serial.n_delivered, name
            # Byte-identical deliveries: same frames, same winners, same order.
            assert [
                (u.frame.key, u.frame.gateway_id, u.fcnt32, u.verdict)
                for u in report.delivered
            ] == [
                (u.frame.key, u.frame.gateway_id, u.fcnt32, u.verdict)
                for u in serial.delivered
            ], name

    def test_threaded_ingests_everything_with_block_policy(self):
        srv = server(queue_capacity=2, drop_policy="block")
        ingestor = ThreadedIngestor(srv, make_streams(n_frames=60))
        n = ingestor.run()
        assert n == 3 * 60
        assert ingestor.n_dropped == 0


class TestDropPolicies:
    def test_newest_policy_sheds_and_counts(self):
        # Capacity 1 with a consumer that only drains after producers
        # finish would deadlock under "block"; under "newest" the
        # producer sheds.  Use the feed directly for a deterministic test.
        feed = GatewayFeed(0, capacity=2, drop_policy="newest")

        async def scenario():
            assert await feed.publish(frame(0, 0, 0.0))
            assert await feed.publish(frame(0, 1, 0.1))
            assert not await feed.publish(frame(0, 2, 0.2))  # full: shed
            assert feed.n_dropped == 1
            await feed.close()
            kept = []
            while True:
                item = await feed.get()
                if not isinstance(item, UplinkFrame):
                    break
                kept.append(item.fcnt)
            return kept

        import asyncio

        assert asyncio.run(scenario()) == [0, 1]

    def test_oldest_policy_keeps_fresh_traffic(self):
        feed = GatewayFeed(0, capacity=2, drop_policy="oldest")

        async def scenario():
            await feed.publish(frame(0, 0, 0.0))
            await feed.publish(frame(0, 1, 0.1))
            assert await feed.publish(frame(0, 2, 0.2))  # evicts fcnt=0
            assert feed.n_dropped == 1
            await feed.close()
            kept = []
            while True:
                item = await feed.get()
                if not isinstance(item, UplinkFrame):
                    break
                kept.append(item.fcnt)
            return kept

        import asyncio

        assert asyncio.run(scenario()) == [1, 2]

    def test_plane_rejects_duplicate_gateway_ids(self):
        srv = server()
        with pytest.raises(ValueError, match="duplicate gateway ids"):
            IngestPlane(srv, [GatewayFeed(0), GatewayFeed(0)])

    def test_drops_reach_server_telemetry(self):
        srv = server(queue_capacity=1, drop_policy="newest")
        # A stream longer than capacity with a slow consumer start is
        # inherently racy thread-side; the async path is deterministic:
        # publish beyond capacity before the plane starts draining.
        import asyncio

        async def scenario():
            feed = GatewayFeed(0, capacity=1, drop_policy="newest")
            plane = IngestPlane(srv, [feed])
            for i in range(5):
                await feed.publish(frame(0, i, 0.01 * i))
            await feed.close()
            return await plane.run()

        n = asyncio.run(scenario())
        assert n == 1
        assert srv.telemetry.counter("gw0.ingest.dropped").value == 4
