"""Race-witness coverage for the server's threaded ingest path.

Dynamic half of the R009 story for ``repro.server``: instrument the
live objects, drive the real threaded transport, and require that every
observed cross-thread write was lock-held *and* statically classified.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

from repro.server.frames import UplinkFrame
from repro.server.ingest import ThreadedIngestor
from repro.server.server import NetworkServer, ServerConfig
from repro.tools.analysis.witness import attach, cross_check, static_verdicts

SRC_ROOT = Path(__file__).resolve().parents[2] / "src"


def frame(gw, addr=1, fcnt=0, t=0.0, seq=0):
    return UplinkFrame(
        gateway_id=gw,
        device_addr=addr,
        fcnt=fcnt,
        snr_db=0.0,
        received_s=t,
        seq=seq,
    )


def make_server(**kwargs):
    kwargs.setdefault("dedup_window_s", 0.01)
    return NetworkServer(ServerConfig(**kwargs))


class TestThreadedIngestWitness:
    def test_producer_drop_accounting_is_guarded_and_classified(self):
        server = make_server(queue_capacity=1, drop_policy="newest")

        def slow_stream():
            # Stall the merge on gw1's head so gw0's producer overruns
            # its capacity-1 queue and exercises the drop path.
            time.sleep(0.2)
            yield frame(1, fcnt=0, t=0.5)

        ingestor = ThreadedIngestor(
            server,
            {
                0: [frame(0, fcnt=i, t=0.01 * i, seq=i) for i in range(10)],
                1: slow_stream(),
            },
        )
        witness = attach(ingestor)
        ingestor.run()
        server.finish()
        assert ingestor.n_dropped > 0  # the shared path actually ran
        assert "n_dropped" in witness.shared_written_attrs()
        verdicts = static_verdicts(
            "repro.server.ingest.ThreadedIngestor", [SRC_ROOT]
        )
        assert cross_check(witness, verdicts) == []

    def test_server_writes_always_hold_the_server_lock(self):
        server = make_server()
        witness = attach(server)
        ingestor = ThreadedIngestor(
            server,
            {
                gw: [
                    frame(gw, addr=3, fcnt=i, t=0.01 * i, seq=i)
                    for i in range(25)
                ]
                for gw in range(3)
            },
        )
        ingestor.run()
        server.drain_commands()
        report = server.finish()
        assert report.n_delivered == 25
        events = witness.write_events()
        assert any(e.attr == "_n_ingested" for e in events)  # non-vacuous
        for event in events:
            assert "_lock" in event.locks, (
                f"write to self.{event.attr} without the server lock "
                f"(seq {event.seq})"
            )
        verdicts = static_verdicts(
            "repro.server.server.NetworkServer", [SRC_ROOT]
        )
        assert cross_check(witness, verdicts) == []


class TestConcurrentCallers:
    def test_direct_multithreaded_handle_uplink_is_race_free(self):
        # The live-gateway tap (Gateway on_outcome) calls handle_uplink
        # from decode worker threads; the witness must see every one of
        # those cross-thread writes performed under the server lock.
        server = make_server()
        witness = attach(server)

        def caller(addr: int) -> None:
            for i in range(20):
                server.handle_uplink(
                    frame(0, addr=addr, fcnt=i, t=0.01 * i, seq=i)
                )

        threads = [
            threading.Thread(target=caller, args=(addr,), name=f"dev{addr}")
            for addr in (1, 2, 3, 4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        report = server.finish()
        assert report.n_ingested == 80
        assert "_n_ingested" in witness.shared_written_attrs()
        assert witness.unguarded_shared_writes() == []
