"""Server-side ADR engine: command emission, quiescence, power trim."""

import pytest

from repro.mac.adr import AdrController
from repro.server.adr import POWER_LADDER_DBM, AdrEngine, power_for_headroom
from repro.server.sessions import DeviceSession


def session(addr=1, initial_sf=10):
    return DeviceSession(
        device_addr=addr, adr=AdrController(initial_sf=initial_sf)
    )


class TestAdrEngine:
    def test_high_snr_upgrades_and_goes_quiet(self):
        engine = AdrEngine()
        dev = session(initial_sf=10)
        commands = []
        for i in range(8):
            commands.extend(engine.observe(dev, 20.0, float(i)))
        sf_commands = [c for c in commands if c.reason == "adr-sf"]
        assert len(sf_commands) == 1
        assert sf_commands[0].spreading_factor == 7
        assert engine.n_upgrades == 1
        # Converged: the last reports emitted nothing.
        assert engine.observe(dev, 20.0, 9.0) == []

    def test_low_snr_downgrades(self):
        engine = AdrEngine(adjust_power=False)
        dev = session(initial_sf=10)
        commands = []
        for i in range(8):
            commands.extend(engine.observe(dev, -5.0, float(i)))
        assert commands
        assert commands[-1].spreading_factor > 10
        assert engine.n_downgrades >= 1

    def test_power_stepdown_with_headroom(self):
        engine = AdrEngine(adjust_power=True)
        dev = session(initial_sf=7)
        commands = []
        for i in range(6):
            commands.extend(engine.observe(dev, 35.0, float(i)))
        # Huge margin above the SF7 requirement: power steps down.
        assert commands
        assert commands[-1].tx_power_dbm < POWER_LADDER_DBM[0]
        assert commands[-1].reason == "adr-power"

    def test_no_power_commands_when_disabled(self):
        engine = AdrEngine(adjust_power=False)
        dev = session(initial_sf=7)
        for i in range(6):
            for command in engine.observe(dev, 35.0, float(i)):
                assert command.reason == "adr-sf"

    def test_command_carries_issue_time(self):
        engine = AdrEngine()
        dev = session(initial_sf=12)
        commands = engine.observe(dev, 25.0, 3.5)
        assert commands and commands[0].issued_s == pytest.approx(3.5)


class TestPowerLadder:
    def test_no_headroom_full_power(self):
        assert power_for_headroom(0.0) == POWER_LADDER_DBM[0]
        assert power_for_headroom(-10.0) == POWER_LADDER_DBM[0]

    def test_each_two_db_buys_a_step(self):
        assert power_for_headroom(2.0) == POWER_LADDER_DBM[1]
        assert power_for_headroom(5.9) == POWER_LADDER_DBM[2]

    def test_floor_at_ladder_bottom(self):
        assert power_for_headroom(100.0) == POWER_LADDER_DBM[-1]
