"""Frame records, the payload header codec, and report conversion."""

import pytest

from repro.server.frames import (
    FCNT_PERIOD,
    DownlinkCommand,
    UplinkFrame,
    decode_uplink_payload,
    encode_uplink_payload,
    uplink_from_outcome,
)
from repro.gateway.workers import DecodeOutcome


def make_outcome(payload, crc_ok=True, start_sample=0, score=1.0, **kwargs):
    return DecodeOutcome(
        job_id=kwargs.pop("job_id", 0),
        start_sample=start_sample,
        users=(),
        payload=payload,
        crc_ok=crc_ok,
        queue_wait_s=0.0,
        decode_s=0.0,
        detection_score=score,
        **kwargs,
    )


class TestUplinkFrame:
    def test_key_is_devaddr_fcnt(self):
        frame = UplinkFrame(
            gateway_id=1, device_addr=7, fcnt=42, snr_db=3.0, received_s=0.5
        )
        assert frame.key == (7, 42)

    def test_rejects_out_of_range_fcnt(self):
        with pytest.raises(ValueError, match="fcnt"):
            UplinkFrame(
                gateway_id=0,
                device_addr=0,
                fcnt=FCNT_PERIOD,
                snr_db=0.0,
                received_s=0.0,
            )

    def test_rejects_negative_gateway(self):
        with pytest.raises(ValueError, match="gateway_id"):
            UplinkFrame(
                gateway_id=-1, device_addr=0, fcnt=0, snr_db=0.0, received_s=0.0
            )


class TestDownlinkCommand:
    def test_sf_range_enforced(self):
        with pytest.raises(ValueError, match="spreading_factor"):
            DownlinkCommand(device_addr=0, spreading_factor=6)
        DownlinkCommand(device_addr=0, spreading_factor=7)


class TestPayloadCodec:
    def test_round_trip(self):
        payload = encode_uplink_payload(0x1234, 0xBEEF, payload_len=8)
        assert len(payload) == 8
        assert decode_uplink_payload(payload) == (0x1234, 0xBEEF)

    def test_fcnt_truncates_to_16_bits(self):
        payload = encode_uplink_payload(1, FCNT_PERIOD + 5)
        assert decode_uplink_payload(payload) == (1, 5)

    def test_short_payload_rejected(self):
        with pytest.raises(ValueError, match="too short"):
            decode_uplink_payload(b"\x00\x01")
        with pytest.raises(ValueError, match="payload_len"):
            encode_uplink_payload(0, 0, payload_len=2)


class TestUplinkFromOutcome:
    def test_crc_ok_outcome_converts(self):
        outcome = make_outcome(
            encode_uplink_payload(9, 100, 8), start_sample=125_000, score=4.5
        )
        frame = uplink_from_outcome(outcome, gateway_id=2, sample_rate=125_000.0)
        assert frame is not None
        assert frame.device_addr == 9
        assert frame.fcnt == 100
        assert frame.gateway_id == 2
        assert frame.received_s == pytest.approx(1.0)
        # Without a calibrated estimator the detection score stands in.
        assert frame.snr_db == pytest.approx(4.5)

    def test_failed_or_short_outcomes_skipped(self):
        assert uplink_from_outcome(make_outcome(None, crc_ok=False), 0, 1.0) is None
        assert (
            uplink_from_outcome(
                make_outcome(b"\x00\x01\x02\x03", crc_ok=False), 0, 1.0
            )
            is None
        )
        assert uplink_from_outcome(make_outcome(b"\x00\x01"), 0, 1.0) is None

    def test_explicit_snr_overrides_score(self):
        outcome = make_outcome(encode_uplink_payload(1, 2))
        frame = uplink_from_outcome(outcome, 0, 1.0, snr_db=-7.5)
        assert frame is not None and frame.snr_db == pytest.approx(-7.5)
