"""Session registry: fcnt extension, replay/reset handling, JSONL persistence."""

import pytest

from repro.server.dedup import DeliveredFrame
from repro.server.frames import FCNT_PERIOD, UplinkFrame
from repro.server.sessions import DeviceRegistry, DeviceSession


def delivered(addr=1, fcnt=0, snr=0.0, t=0.0, gateways=(0,)):
    frame = UplinkFrame(
        gateway_id=gateways[0],
        device_addr=addr,
        fcnt=fcnt,
        snr_db=snr,
        received_s=t,
    )
    return DeliveredFrame(
        frame=frame, n_copies=len(gateways), gateways=tuple(gateways), first_seen_s=t
    )


class TestFcntValidation:
    def test_monotone_counters_accepted(self):
        registry = DeviceRegistry()
        for i, fcnt in enumerate([0, 1, 5, 100]):
            session, verdict = registry.observe(delivered(fcnt=fcnt, t=float(i)))
            assert verdict == "accepted"
        assert session.fcnt32 == 100
        assert session.n_uplinks == 4

    def test_rollover_extends_to_32_bits(self):
        registry = DeviceRegistry()
        registry.observe(delivered(fcnt=FCNT_PERIOD - 2, t=0.0))
        registry.observe(delivered(fcnt=FCNT_PERIOD - 1, t=1.0))
        session, verdict = registry.observe(delivered(fcnt=3, t=2.0))
        assert verdict == "accepted"
        # Raw counter wrapped; the extended counter kept counting.
        assert session.fcnt32 == FCNT_PERIOD + 3

    def test_replayed_frame_rejected(self):
        registry = DeviceRegistry()
        registry.observe(delivered(fcnt=5000, t=0.0))
        session, verdict = registry.observe(delivered(fcnt=4000, t=1.0))
        assert verdict == "replay"
        assert session.fcnt32 == 5000
        assert session.n_replays == 1
        assert session.n_uplinks == 1  # replay did not count as an uplink

    def test_gap_beyond_max_rejected(self):
        registry = DeviceRegistry(max_fcnt_gap=100)
        registry.observe(delivered(fcnt=0, t=0.0))
        _, verdict = registry.observe(delivered(fcnt=101, t=1.0))
        assert verdict == "replay"
        _, verdict = registry.observe(delivered(fcnt=100, t=2.0))
        assert verdict == "accepted"

    def test_device_reset_restarts_counter(self):
        registry = DeviceRegistry()
        registry.observe(delivered(fcnt=5000, t=0.0))
        # A tiny raw counter that fails gap validation reads as a reboot.
        session, verdict = registry.observe(delivered(fcnt=0, t=1.0))
        assert verdict == "reset"
        assert session.fcnt32 == 0
        assert session.n_resets == 1
        # Counting resumes from the restart.
        _, verdict = registry.observe(delivered(fcnt=1, t=2.0))
        assert verdict == "accepted"

    def test_large_restart_is_replay_not_reset(self):
        registry = DeviceRegistry(reset_threshold=16)
        registry.observe(delivered(fcnt=60000, t=0.0))
        _, verdict = registry.observe(delivered(fcnt=30000, t=1.0))
        assert verdict == "replay"


class TestRegistry:
    def test_auto_join_and_gateway_accounting(self):
        registry = DeviceRegistry()
        registry.observe(delivered(addr=7, fcnt=0, gateways=(0, 2)))
        registry.observe(delivered(addr=7, fcnt=1, gateways=(2,)))
        assert registry.n_joins == 1
        session = registry.get(7)
        assert session is not None
        assert session.gateways_seen == {0: 1, 2: 2}

    def test_eviction_is_idle_first_deterministic(self):
        registry = DeviceRegistry(max_devices=2)
        registry.observe(delivered(addr=1, fcnt=0, t=10.0))
        registry.observe(delivered(addr=2, fcnt=0, t=20.0))
        registry.observe(delivered(addr=3, fcnt=0, t=30.0))  # evicts addr 1
        assert registry.n_evicted == 1
        assert registry.get(1) is None
        assert {s.device_addr for s in registry.sessions()} == {2, 3}

    def test_sessions_sorted_by_address(self):
        registry = DeviceRegistry()
        for addr in (9, 3, 7):
            registry.observe(delivered(addr=addr, fcnt=0))
        assert [s.device_addr for s in registry.sessions()] == [3, 7, 9]


class TestPersistence:
    def test_jsonl_round_trip(self, tmp_path):
        registry = DeviceRegistry(adr_initial_sf=10)
        for i in range(5):
            registry.observe(delivered(addr=2, fcnt=100 + i, snr=18.0, t=float(i)))
        registry.observe(delivered(addr=4, fcnt=0, snr=-5.0, t=9.0))
        path = tmp_path / "sessions.jsonl"
        registry.write_jsonl(str(path))

        restored = DeviceRegistry(adr_initial_sf=10)
        assert restored.read_jsonl(str(path)) == 2
        for addr in (2, 4):
            original, copy = registry.get(addr), restored.get(addr)
            assert copy is not None and original is not None
            assert copy.to_state() == original.to_state()
        # The restored ADR controller keeps smoothed state and assignment.
        session = restored.get(2)
        assert session.adr.smoothed_snr_db == pytest.approx(
            registry.get(2).adr.smoothed_snr_db
        )
        assert session.adr.spreading_factor == registry.get(2).adr.spreading_factor
        # And counter validation carries on seamlessly.
        _, verdict = restored.observe(delivered(addr=2, fcnt=105, t=10.0))
        assert verdict == "accepted"
        # Re-sent old counter (above the reset threshold): a true replay.
        _, verdict = restored.observe(delivered(addr=2, fcnt=102, t=11.0))
        assert verdict == "replay"

    def test_restore_respects_device_cap(self):
        source = DeviceRegistry()
        for addr in range(4):
            source.observe(delivered(addr=addr, fcnt=0, t=float(addr)))
        capped = DeviceRegistry(max_devices=2)
        assert capped.restore_jsonl(source.snapshot_jsonl()) == 4
        assert len(capped) == 2

    def test_from_state_round_trips_empty_ewma(self):
        session = DeviceSession.from_state(
            DeviceRegistry()._new_session(1).to_state()
        )
        assert session.adr.smoothed_snr_db is None
