"""Real-waveform bridge: streaming gateways feeding the network server.

Two :class:`repro.gateway.Gateway` instances decode the *same* node
schedule at different link qualities (the same seed renders identical
timing; only SNR differs).  ``payload_fn`` stamps each transmission with
the ``(device_addr, fcnt)`` header, :func:`uplinks_from_report` replays
the decodes as uplink records, and the server deduplicates across the
two receptions -- IQ samples to application uplinks, end to end.
"""

from repro.gateway import Gateway, GatewayConfig, SyntheticTrafficSource
from repro.server.frames import (
    decode_uplink_payload,
    encode_uplink_payload,
    uplink_from_outcome,
    uplinks_from_report,
)
from repro.server.server import NetworkServer, ServerConfig
from tests.gateway.conftest import PARAMS, PAYLOAD_LEN, periodic_node

DEVICE_ADDR = 9


def stamped(node_id: int, seq: int) -> bytes:
    return encode_uplink_payload(node_id, seq, PAYLOAD_LEN)


def run_gateway(snr_db: float):
    source = SyntheticTrafficSource(
        PARAMS,
        [periodic_node(node_id=DEVICE_ADDR, snr_db=snr_db)],
        duration_s=1.0,
        payload_len=PAYLOAD_LEN,
        rng=0,
        payload_fn=stamped,
    )
    config = GatewayConfig(
        params=PARAMS, payload_len=PAYLOAD_LEN, executor="serial", seed=0
    )
    return Gateway(config).run(source)


class TestWaveformToServer:
    def test_two_gateway_decode_dedup_round_trip(self):
        report_near = run_gateway(snr_db=15.0)
        report_far = run_gateway(snr_db=8.0)
        assert report_near.packets_decoded > 0
        assert report_far.packets_decoded > 0

        streams = {
            0: uplinks_from_report(report_near, 0, PARAMS.sample_rate),
            1: uplinks_from_report(report_far, 1, PARAMS.sample_rate),
        }
        # The payload header survived the waveform round trip.
        for gw, frames in streams.items():
            assert frames
            for frame in frames:
                assert frame.device_addr == DEVICE_ADDR
                assert decode_uplink_payload(frame.payload) == (
                    DEVICE_ADDR,
                    frame.fcnt,
                )

        server = NetworkServer(ServerConfig(dedup_window_s=0.1))
        for frame in sorted(
            (f for frames in streams.values() for f in frames),
            key=lambda f: (f.received_s, f.gateway_id, f.seq),
        ):
            server.handle_uplink(frame)
        result = server.finish()

        # Every frame both gateways heard collapsed to one delivery.
        heard_twice = set(f.key for f in streams[0]) & set(
            f.key for f in streams[1]
        )
        assert heard_twice
        delivered_keys = [u.frame.key for u in result.delivered]
        assert len(delivered_keys) == len(set(delivered_keys))
        for key in heard_twice:
            winners = [u for u in result.delivered if u.frame.key == key]
            assert len(winners) == 1
            # Identical waveform at higher SNR scores at least as high,
            # so the near gateway's copy wins.
            assert winners[0].frame.gateway_id == 0
            assert winners[0].delivered.n_copies == 2

    def test_live_on_outcome_hook_feeds_server(self):
        import threading

        server = NetworkServer(ServerConfig(dedup_window_s=0.05))
        counters = {"seq": 0}
        feed_lock = threading.Lock()  # on_outcome may fire from workers

        def forward(outcome):
            # Live bridge: one record per CRC-verified decode, pushed
            # into the (internally locked) server as it happens.
            with feed_lock:
                frame = uplink_from_outcome(
                    outcome, 0, PARAMS.sample_rate, seq=counters["seq"]
                )
                if frame is not None:
                    counters["seq"] += 1
                    server.handle_uplink(frame)

        source = SyntheticTrafficSource(
            PARAMS,
            [periodic_node(node_id=DEVICE_ADDR, snr_db=15.0)],
            duration_s=1.0,
            payload_len=PAYLOAD_LEN,
            rng=0,
            payload_fn=stamped,
        )
        config = GatewayConfig(
            params=PARAMS,
            payload_len=PAYLOAD_LEN,
            executor="thread",
            n_workers=2,
            seed=0,
        )
        report = Gateway(config, on_outcome=forward).run(source)
        result = server.finish()
        assert report.packets_decoded > 0
        assert result.n_ingested == report.packets_decoded
        assert result.n_delivered == result.n_ingested  # single gateway
        # fcnt carried the per-node transmission index.
        fcnts = sorted(u.frame.fcnt for u in result.delivered)
        assert fcnts == list(range(len(fcnts)))
