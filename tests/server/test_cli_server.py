"""The `repro server` CLI subcommand end to end."""

from repro.cli import main
from repro.gateway.telemetry import parse_prometheus_text
from repro.server.sessions import DeviceRegistry


def run_cli(capsys, *argv):
    code = main(["server", *argv])
    return code, capsys.readouterr().out


class TestServerCommand:
    def test_default_scenario_converges(self, capsys):
        code, out = run_cli(capsys, "--duration", "60", "--assert-adr")
        assert code == 0
        assert "duplicates collapsed" in out
        assert "ADR moved 2 node(s) faster, 2 node(s) slower" in out

    def test_artifacts_written(self, capsys, tmp_path):
        metrics = tmp_path / "metrics.prom"
        state = tmp_path / "sessions.jsonl"
        code, out = run_cli(
            capsys,
            "--duration",
            "60",
            "--metrics-out",
            str(metrics),
            "--state-out",
            str(state),
        )
        assert code == 0
        samples = parse_prometheus_text(metrics.read_text())
        assert samples["repro_dedup_delivered_total"] > 0
        assert samples['repro_ingest_frames_total{gateway="0"}'] > 0
        registry = DeviceRegistry()
        assert registry.restore_jsonl(state.read_text()) == 4

    def test_state_round_trip_across_invocations(self, capsys, tmp_path):
        state = tmp_path / "sessions.jsonl"
        code, _ = run_cli(
            capsys, "--duration", "30", "--state-out", str(state)
        )
        assert code == 0
        code, out = run_cli(
            capsys, "--duration", "30", "--state-in", str(state)
        )
        assert code == 0
        assert "restored 4 session(s)" in out

    def test_assert_adr_fails_when_all_nodes_move_one_way(self, capsys):
        # Uniformly strong links: every node upgrades, none slows down,
        # so the convergence assertion (both directions) must fail.
        code, _ = run_cli(
            capsys,
            "--duration",
            "60",
            "--snr-lo",
            "20",
            "--assert-adr",
        )
        assert code == 1

    def test_ingest_mode_flag(self, capsys):
        code, out = run_cli(
            capsys, "--duration", "30", "--ingest", "thread"
        )
        assert code == 0
        assert "thread ingest" in out
