"""Tests for the timing-offset model."""

import numpy as np
import pytest

from repro.hardware import TimingModel


class TestTimingModel:
    def test_offset_samples(self):
        model = TimingModel(offset_s=10e-6)
        assert model.offset_samples(125_000.0) == pytest.approx(1.25)

    def test_apply_integer_delay_prepends_zeros(self):
        model = TimingModel(offset_s=3 / 125e3)
        x = np.ones(16, dtype=complex)
        delayed = model.apply(x, 125e3)
        assert delayed.size == 19
        assert np.allclose(delayed[:3], 0.0)
        assert np.allclose(delayed[3:], 1.0)

    def test_apply_zero_delay(self):
        model = TimingModel(offset_s=0.0)
        x = np.arange(8, dtype=complex)
        assert np.array_equal(model.apply(x, 125e3), x)

    def test_fractional_delay_shifts_tone_phase(self):
        model = TimingModel(offset_s=0.5 / 125e3)
        n = 256
        tone = np.exp(2j * np.pi * 10 * np.arange(n) / n)
        delayed = model.apply(tone, 125e3)
        expected_phase = -2 * np.pi * 10 * 0.5 / n
        measured = np.angle(delayed[0] * np.conj(tone[0]))
        assert measured == pytest.approx(expected_phase, abs=1e-6)

    def test_sample_bounds(self):
        rng = np.random.default_rng(0)
        offsets = [TimingModel.sample(rng, max_offset_s=1e-4).offset_s for _ in range(100)]
        assert all(0.0 <= o <= 1e-4 for o in offsets)

    def test_sample_reproducible(self):
        a = TimingModel.sample(np.random.default_rng(3))
        b = TimingModel.sample(np.random.default_rng(3))
        assert a.offset_s == b.offset_s and a.skew_ppm == b.skew_ppm
