"""Tests for the ADC quantization model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import AdcModel


class TestAdcModel:
    def test_validation(self):
        with pytest.raises(ValueError, match="bits"):
            AdcModel(bits=0)
        with pytest.raises(ValueError, match="full_scale"):
            AdcModel(full_scale=0.0)

    def test_step_size(self):
        adc = AdcModel(bits=2, full_scale=1.0)
        assert adc.step == pytest.approx(0.5)

    def test_quantization_error_bounded_by_step(self):
        adc = AdcModel(bits=8, full_scale=1.0)
        rng = np.random.default_rng(0)
        x = (rng.uniform(-0.9, 0.9, 500) + 1j * rng.uniform(-0.9, 0.9, 500))
        q = adc.digitize(x)
        assert np.max(np.abs(q.real - x.real)) <= adc.step / 2 + 1e-12
        assert np.max(np.abs(q.imag - x.imag)) <= adc.step / 2 + 1e-12

    def test_clipping(self):
        adc = AdcModel(bits=8, full_scale=1.0)
        q = adc.digitize(np.array([10.0 + 10.0j]))
        assert q[0].real <= 1.0 and q[0].imag <= 1.0

    def test_quantization_noise_power_theory(self):
        adc = AdcModel(bits=10, full_scale=1.0)
        rng = np.random.default_rng(1)
        x = rng.uniform(-0.99, 0.99, 20000) + 1j * rng.uniform(-0.99, 0.99, 20000)
        q = adc.digitize(x)
        measured = np.mean(np.abs(q - x) ** 2)
        assert measured == pytest.approx(adc.quantization_noise_power, rel=0.1)

    @given(st.integers(min_value=4, max_value=14))
    @settings(max_examples=10, deadline=None)
    def test_idempotent(self, bits):
        adc = AdcModel(bits=bits)
        rng = np.random.default_rng(bits)
        x = rng.uniform(-0.9, 0.9, 64) + 1j * rng.uniform(-0.9, 0.9, 64)
        once = adc.digitize(x)
        twice = adc.digitize(once)
        assert np.allclose(once, twice)

    def test_weak_signal_below_lsb_lost(self):
        # The Sec. 5.2 limit: signals below the quantization floor vanish.
        adc = AdcModel(bits=4, full_scale=1.0)
        weak = np.full(32, 1e-4 + 1e-4j)
        q = adc.digitize(weak)
        # Quantized to the same (constant) code as zero input.
        assert np.allclose(q, adc.digitize(np.zeros(32, dtype=complex)))
