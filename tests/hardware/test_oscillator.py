"""Tests for the crystal oscillator model."""

import numpy as np
import pytest

from repro.hardware import OscillatorModel
from repro.phy import LoRaParams

PARAMS = LoRaParams(spreading_factor=8)


class TestOscillatorModel:
    def test_apply_shifts_tone(self):
        osc = OscillatorModel(offset_hz=1000.0)
        fs = 125_000.0
        baseline = np.ones(1024, dtype=complex)
        shifted = osc.apply(baseline, fs)
        spectrum = np.abs(np.fft.fft(shifted))
        peak_hz = np.fft.fftfreq(1024, 1 / fs)[np.argmax(spectrum)]
        assert peak_hz == pytest.approx(1000.0, abs=fs / 1024)

    def test_zero_offset_identity(self):
        osc = OscillatorModel(offset_hz=0.0)
        x = np.exp(2j * np.pi * 0.1 * np.arange(64))
        assert np.allclose(osc.apply(x, 125e3), x)

    def test_preserves_magnitude(self):
        osc = OscillatorModel(offset_hz=3333.0, drift_hz_per_s=10.0)
        x = np.ones(256, dtype=complex)
        assert np.allclose(np.abs(osc.apply(x, 125e3)), 1.0)

    def test_drift_changes_frequency_over_time(self):
        osc = OscillatorModel(offset_hz=0.0, drift_hz_per_s=100.0)
        assert osc.frequency_at(0.0) == 0.0
        assert osc.frequency_at(2.0) == pytest.approx(200.0)

    def test_sample_within_tolerance(self):
        rng = np.random.default_rng(0)
        carrier = 902e6
        tolerance = 25.0
        offsets = [
            OscillatorModel.sample(rng, tolerance_ppm=tolerance, carrier_hz=carrier).offset_hz
            for _ in range(200)
        ]
        bound = tolerance * 1e-6 * carrier
        assert all(-bound <= o <= bound for o in offsets)
        # Spread should cover a good part of the range (uniform draw).
        assert np.std(offsets) > bound / 4

    def test_sample_reproducible(self):
        a = OscillatorModel.sample(np.random.default_rng(7))
        b = OscillatorModel.sample(np.random.default_rng(7))
        assert a.offset_hz == b.offset_hz

    def test_jitter_adds_phase_noise(self):
        rng = np.random.default_rng(1)
        osc = OscillatorModel(offset_hz=0.0, jitter_hz=50.0)
        x = np.ones(4096, dtype=complex)
        noisy = osc.apply(x, 125e3, rng=rng)
        assert not np.allclose(noisy, x)
        assert np.allclose(np.abs(noisy), 1.0)

    def test_start_time_continues_phase(self):
        osc = OscillatorModel(offset_hz=500.0)
        fs = 125e3
        x = np.ones(512, dtype=complex)
        whole = osc.apply(x, fs)
        first = osc.apply(x[:256], fs, start_time=0.0)
        second = osc.apply(x[256:], fs, start_time=256 / fs)
        assert np.allclose(np.concatenate([first, second]), whole)
