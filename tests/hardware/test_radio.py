"""Tests for the LoRaRadio client model."""

import numpy as np
import pytest

from repro.hardware import LoRaRadio, OscillatorModel, TimingModel
from repro.phy import LoRaParams
from repro.phy.chirp import downchirp

PARAMS = LoRaParams(spreading_factor=8, preamble_len=8)


def _measure_offset_bins(params, waveform, window_index=2, oversample=16):
    n = params.samples_per_symbol
    window = waveform[window_index * n : (window_index + 1) * n] * downchirp(params)
    spectrum = np.abs(np.fft.fft(window, n * oversample))
    return np.argmax(spectrum) / oversample


class TestTransmit:
    def test_waveform_length_includes_delay(self):
        radio = LoRaRadio(
            PARAMS,
            oscillator=OscillatorModel(0.0),
            timing=TimingModel(10 / PARAMS.sample_rate),
            rng=np.random.default_rng(0),
        )
        waveform, _ = radio.transmit_symbols([1, 2])
        expected = (PARAMS.preamble_len + 2) * PARAMS.samples_per_symbol + 10
        assert waveform.size == expected

    def test_aggregate_offset_matches_measurement(self):
        # The ground-truth aggregate offset (cfo - delay in bins) must
        # match what a dechirp measurement of a preamble window sees.
        rng = np.random.default_rng(1)
        radio = LoRaRadio(
            PARAMS,
            oscillator=OscillatorModel(PARAMS.bins_to_hz(9.25)),
            timing=TimingModel(3.5 / PARAMS.sample_rate),
            rng=rng,
        )
        waveform, state = radio.transmit_symbols(np.zeros(2, dtype=int))
        measured = _measure_offset_bins(PARAMS, waveform)
        expected = state.aggregate_offset_bins(PARAMS) % PARAMS.chips_per_symbol
        assert measured == pytest.approx(expected, abs=0.1)

    def test_amplitude_scaling(self):
        rng = np.random.default_rng(2)
        radio = LoRaRadio(PARAMS, rng=rng)
        waveform, state = radio.transmit_symbols([0], amplitude=4.0)
        active = waveform[np.abs(waveform) > 0]
        assert np.allclose(np.abs(active), 4.0, atol=1e-9)
        assert state.amplitude == 4.0

    def test_apply_timing_false_starts_immediately(self):
        rng = np.random.default_rng(3)
        radio = LoRaRadio(
            PARAMS, timing=TimingModel(20 / PARAMS.sample_rate), rng=rng
        )
        waveform, state = radio.transmit_symbols([0], apply_timing=False)
        assert abs(waveform[0]) > 0
        assert state.timing_offset_s == 0.0

    def test_transmit_payload_roundtrip_symbols(self):
        rng = np.random.default_rng(4)
        radio = LoRaRadio(PARAMS, rng=rng)
        payload = b"sensor reading"
        _, _, symbols = radio.transmit_payload(payload)
        decoded = radio.framer.decode(symbols, len(payload))
        assert decoded.payload == payload and decoded.crc_ok

    def test_random_phase_differs_between_packets(self):
        rng = np.random.default_rng(5)
        radio = LoRaRadio(PARAMS, oscillator=OscillatorModel(0.0), timing=TimingModel(0.0), rng=rng)
        w1, s1 = radio.transmit_symbols([0])
        w2, s2 = radio.transmit_symbols([0])
        assert s1.phase_rad != s2.phase_rad

    def test_tx_power_linear(self):
        radio = LoRaRadio(PARAMS, tx_power_dbm=20.0, rng=np.random.default_rng(6))
        assert radio.tx_power_linear == pytest.approx(100.0)


class TestTransmitterState:
    def test_aggregate_offset_sign_convention(self):
        radio = LoRaRadio(
            PARAMS,
            oscillator=OscillatorModel(PARAMS.bins_to_hz(5.0)),
            timing=TimingModel(2.0 / PARAMS.sample_rate),
            rng=np.random.default_rng(7),
        )
        state = radio.ground_truth()
        # cfo 5 bins, delay 2 samples -> aggregate 3 bins.
        assert state.aggregate_offset_bins(PARAMS) == pytest.approx(3.0)
