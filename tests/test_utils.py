"""Unit and property tests for repro.utils."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import (
    circular_distance,
    db_to_linear,
    ensure_rng,
    fractional_delay,
    fractional_part,
    linear_to_db,
    next_pow2,
    signal_power,
    snr_db,
    wrap_to_half,
)


class TestConversions:
    def test_db_to_linear_known_values(self):
        assert db_to_linear(0.0) == pytest.approx(1.0)
        assert db_to_linear(10.0) == pytest.approx(10.0)
        assert db_to_linear(-10.0) == pytest.approx(0.1)
        assert db_to_linear(3.0) == pytest.approx(1.9953, rel=1e-3)

    def test_linear_to_db_known_values(self):
        assert linear_to_db(1.0) == pytest.approx(0.0)
        assert linear_to_db(100.0) == pytest.approx(20.0)

    def test_linear_to_db_clamps_at_floor(self):
        assert np.isfinite(linear_to_db(0.0))
        assert np.isfinite(linear_to_db(-5.0))

    @given(st.floats(min_value=-120.0, max_value=120.0))
    def test_db_roundtrip(self, value_db):
        assert linear_to_db(db_to_linear(value_db)) == pytest.approx(value_db, abs=1e-9)

    def test_signal_power_unit_tone(self):
        tone = np.exp(2j * np.pi * 0.1 * np.arange(256))
        assert signal_power(tone) == pytest.approx(1.0)

    def test_signal_power_empty(self):
        assert signal_power(np.array([])) == 0.0

    def test_signal_power_scales_quadratically(self):
        x = np.ones(64)
        assert signal_power(3.0 * x) == pytest.approx(9.0 * signal_power(x))

    def test_snr_db_matches_construction(self):
        rng = np.random.default_rng(0)
        signal = np.exp(2j * np.pi * 0.05 * np.arange(4096)) * 10.0
        noise = (rng.normal(size=4096) + 1j * rng.normal(size=4096)) / np.sqrt(2)
        measured = snr_db(signal, noise)
        assert measured == pytest.approx(20.0, abs=0.5)

    def test_snr_db_zero_noise_is_inf(self):
        assert snr_db(np.ones(4), np.zeros(4)) == float("inf")


class TestRng:
    def test_ensure_rng_passthrough(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_ensure_rng_seed_reproducible(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_ensure_rng_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_ensure_rng_default_argument_is_none(self):
        assert isinstance(ensure_rng(), np.random.Generator)

    def test_ensure_rng_none_streams_are_independent(self):
        # Fresh nondeterministic generators must not share a stream.
        a = ensure_rng(None).random(8)
        b = ensure_rng(None).random(8)
        assert not np.array_equal(a, b)

    def test_ensure_rng_seed_sequence(self):
        seq = np.random.SeedSequence(7)
        a = ensure_rng(seq).random(5)
        b = ensure_rng(np.random.SeedSequence(7)).random(5)
        assert isinstance(ensure_rng(np.random.SeedSequence(7)), np.random.Generator)
        assert np.array_equal(a, b)

    def test_ensure_rng_int_matches_default_rng(self):
        assert np.array_equal(
            ensure_rng(123).random(5), np.random.default_rng(123).random(5)
        )

    def test_ensure_rng_passthrough_preserves_stream_position(self):
        # Passing an existing generator twice must keep consuming the SAME
        # stream, not restart it -- the property that lets one experiment
        # seed deterministically derive every component's draws.
        gen = np.random.default_rng(5)
        first = ensure_rng(gen).random(3)
        second = ensure_rng(gen).random(3)
        reference = np.random.default_rng(5).random(6)
        assert np.array_equal(np.concatenate([first, second]), reference)

    def test_ensure_rng_derived_streams_deterministic(self):
        def derive(seed):
            root = ensure_rng(seed)
            children = [ensure_rng(root) for _ in range(3)]
            return [child.random(4) for child in children]

        for a, b in zip(derive(99), derive(99)):
            assert np.array_equal(a, b)


class TestDspHelpers:
    @pytest.mark.parametrize(
        "n,expected", [(0, 1), (1, 1), (2, 2), (3, 4), (129, 256), (1024, 1024)]
    )
    def test_next_pow2(self, n, expected):
        assert next_pow2(n) == expected

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_fractional_part_in_range(self, value):
        frac = fractional_part(value)
        assert 0.0 <= frac < 1.0

    def test_fractional_part_negative(self):
        assert fractional_part(-0.25) == pytest.approx(0.75)

    @given(st.floats(min_value=-100.0, max_value=100.0))
    def test_wrap_to_half_range(self, value):
        wrapped = wrap_to_half(value)
        assert -0.5 <= wrapped < 0.5

    @given(
        st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
        st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
    )
    def test_circular_distance_symmetric_and_bounded(self, a, b):
        d = circular_distance(a, b)
        assert d == pytest.approx(circular_distance(b, a))
        assert 0.0 <= d <= 0.5

    def test_circular_distance_wraps(self):
        assert circular_distance(0.02, 0.98) == pytest.approx(0.04)

    def test_circular_distance_custom_period(self):
        assert circular_distance(1.0, 255.0, period=256.0) == pytest.approx(2.0)

    def test_fractional_delay_integer_is_roll(self):
        x = np.exp(2j * np.pi * 0.11 * np.arange(64))
        delayed = fractional_delay(x, 3.0)
        assert np.allclose(delayed, np.roll(x, 3), atol=1e-9)

    def test_fractional_delay_preserves_energy(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=128) + 1j * rng.normal(size=128)
        delayed = fractional_delay(x, 0.37)
        assert signal_power(delayed) == pytest.approx(signal_power(x), rel=1e-9)

    def test_fractional_delay_zero_is_identity(self):
        x = np.arange(8, dtype=complex)
        assert np.array_equal(fractional_delay(x, 0.0), x)

    def test_fractional_delay_composes(self):
        x = np.exp(2j * np.pi * 0.07 * np.arange(256))
        once = fractional_delay(fractional_delay(x, 0.3), 0.4)
        direct = fractional_delay(x, 0.7)
        assert np.allclose(once, direct, atol=1e-9)
