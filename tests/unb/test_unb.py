"""Tests for the ultra-narrowband extension (Sec. 5.2's generalization)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.unb import (
    UnbCollisionDecoder,
    UnbParams,
    modulate_dbpsk,
    random_bits,
    receive_unb_collision,
)
from repro.unb.phy import demodulate_dbpsk_baseband

PARAMS = UnbParams()


class TestUnbParams:
    def test_defaults_sigfox_class(self):
        assert PARAMS.bit_rate == 100.0
        assert PARAMS.samples_per_bit == 480.0
        assert PARAMS.occupied_bandwidth_hz == 200.0

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            UnbParams(bit_rate=0.0)
        with pytest.raises(ValueError, match="oversample"):
            UnbParams(bit_rate=100.0, sample_rate=500.0)
        with pytest.raises(ValueError, match="integer multiple"):
            UnbParams(bit_rate=100.0, sample_rate=48_030.0)


class TestDbpsk:
    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_noiseless_roundtrip(self, bits):
        bits = np.array(bits, dtype=np.uint8)
        waveform = modulate_dbpsk(PARAMS, bits)
        decoded = demodulate_dbpsk_baseband(PARAMS, waveform, bits.size)
        assert np.array_equal(decoded, bits)

    def test_constant_envelope(self):
        waveform = modulate_dbpsk(PARAMS, np.array([0, 1, 1, 0], dtype=np.uint8))
        assert np.allclose(np.abs(waveform), 1.0)

    def test_residual_cfo_tolerated(self):
        # DBPSK survives a small carrier error (a fraction of the bit rate).
        bits = random_bits(30, np.random.default_rng(0))
        waveform = modulate_dbpsk(PARAMS, bits)
        n = np.arange(waveform.size)
        drifted = waveform * np.exp(2j * np.pi * 3.0 * n / PARAMS.sample_rate)
        decoded = demodulate_dbpsk_baseband(PARAMS, drifted, bits.size)
        assert np.array_equal(decoded, bits)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError, match="need"):
            demodulate_dbpsk_baseband(PARAMS, np.zeros(10, dtype=complex), 5)


class TestCollisionDecoding:
    def test_five_user_collision(self):
        rng = np.random.default_rng(1)
        n_bits = 40
        cfos = [-9000.0, -3000.0, 500.0, 4000.0, 10_000.0]
        streams = [random_bits(n_bits, rng) for _ in cfos]
        capture, _ = receive_unb_collision(
            PARAMS, [(b, f, 1.0) for b, f in zip(streams, cfos)], rng=rng
        )
        users = UnbCollisionDecoder(PARAMS).decode(capture, n_bits)
        assert len(users) == 5
        for user in users:
            best = max(float(np.mean(user.bits == b)) for b in streams)
            assert best == 1.0

    def test_carrier_estimates_accurate(self):
        rng = np.random.default_rng(2)
        capture, _ = receive_unb_collision(
            PARAMS, [(random_bits(40, rng), -7777.0, 1.0)], rng=rng
        )
        carriers = UnbCollisionDecoder(PARAMS).find_carriers(capture)
        assert len(carriers) == 1
        assert carriers[0][0] == pytest.approx(-7777.0, abs=25.0)

    def test_near_far_unb(self):
        # Filtering separation is power-robust: a 26 dB weaker user in its
        # own subchannel still decodes.
        rng = np.random.default_rng(3)
        n_bits = 40
        strong = random_bits(n_bits, rng)
        weak = random_bits(n_bits, rng)
        capture, _ = receive_unb_collision(
            PARAMS,
            [(strong, -5000.0, 20.0), (weak, 6000.0, 1.0)],
            rng=rng,
        )
        users = UnbCollisionDecoder(PARAMS).decode(capture, n_bits)
        by_carrier = {round(u.carrier_hz, -3): u for u in users}
        assert 6000.0 in by_carrier
        assert np.array_equal(by_carrier[6000.0].bits, weak)

    def test_noise_only_finds_nothing(self):
        rng = np.random.default_rng(4)
        capture = (rng.normal(size=48_000) + 1j * rng.normal(size=48_000)) / np.sqrt(2)
        users = UnbCollisionDecoder(PARAMS, threshold_snr=8.0).decode(capture, 20)
        assert users == []

    def test_cfo_out_of_window_rejected(self):
        with pytest.raises(ValueError, match="window"):
            receive_unb_collision(PARAMS, [(np.zeros(4, dtype=np.uint8), 30_000.0, 1.0)])

    def test_empty_transmissions_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            receive_unb_collision(PARAMS, [])

    def test_same_subchannel_merges(self):
        # Two users closer than the occupied bandwidth cannot be separated
        # by filtering -- the UNB analogue of Choir's offset merging.
        rng = np.random.default_rng(5)
        n_bits = 40
        capture, _ = receive_unb_collision(
            PARAMS,
            [(random_bits(n_bits, rng), 1000.0, 1.0), (random_bits(n_bits, rng), 1120.0, 1.0)],
            rng=rng,
        )
        users = UnbCollisionDecoder(PARAMS).decode(capture, n_bits)
        assert len(users) == 1
