"""Tests for the spatial environment field."""

import numpy as np
import pytest

from repro.sensing import EnvironmentField


class TestEnvironmentField:
    def test_core_near_setpoint(self):
        field = EnvironmentField(microclimate_sigma=0.0)
        core = field.temperature(0.5, 0.5, floor=0)
        assert core == pytest.approx(field.indoor_setpoint_c, abs=1.5)

    def test_wall_pulled_toward_outdoor(self):
        field = EnvironmentField(microclimate_sigma=0.0)
        wall = field.temperature(0.0, 0.5, floor=0)
        core = field.temperature(0.5, 0.5, floor=0)
        # Outdoor default is colder than the setpoint.
        assert wall < core

    def test_floor_gradient(self):
        field = EnvironmentField(microclimate_sigma=0.0)
        t0 = field.temperature(0.5, 0.5, floor=0)
        t3 = field.temperature(0.5, 0.5, floor=3)
        assert t3 - t0 == pytest.approx(3 * field.floor_gradient_c)

    def test_humidity_bounded(self):
        field = EnvironmentField()
        for u in np.linspace(0, 1, 7):
            for v in np.linspace(0, 1, 7):
                assert 0.0 <= field.humidity(u, v) <= 100.0

    def test_microclimate_smooth(self):
        # Nearby points must read nearby values (spatial correlation).
        field = EnvironmentField(microclimate_sigma=1.0, rng_seed=1)
        a = field.temperature(0.40, 0.40)
        b = field.temperature(0.41, 0.41)
        assert abs(a - b) < 0.5

    def test_reproducible_with_seed(self):
        a = EnvironmentField(rng_seed=7).temperature(0.3, 0.6)
        b = EnvironmentField(rng_seed=7).temperature(0.3, 0.6)
        assert a == b

    def test_humidity_envelope_effect(self):
        field = EnvironmentField(microclimate_sigma=0.0)
        wall = field.humidity(0.0, 0.5)
        core = field.humidity(0.5, 0.5)
        # Outdoor humidity default is higher than indoor.
        assert wall > core
