"""Tests for sensor sampling and quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sensing import EnvironmentField, SensorNode, dequantize_reading, quantize_reading
from repro.sensing.sensors import TEMP_RANGE_C, bits_to_code, code_to_bits


class TestQuantization:
    @given(st.floats(min_value=-20.0, max_value=60.0))
    def test_roundtrip_within_lsb(self, value):
        code = quantize_reading(value, TEMP_RANGE_C, 12)
        recovered = dequantize_reading(code, TEMP_RANGE_C, 12)
        lsb = (TEMP_RANGE_C[1] - TEMP_RANGE_C[0]) / (2**12 - 1)
        assert abs(recovered - value) <= lsb

    def test_clipping(self):
        assert quantize_reading(-100.0, TEMP_RANGE_C, 8) == 0
        assert quantize_reading(200.0, TEMP_RANGE_C, 8) == 255

    def test_monotone(self):
        codes = [quantize_reading(v, TEMP_RANGE_C, 12) for v in (-10.0, 0.0, 25.0, 50.0)]
        assert codes == sorted(codes)

    def test_invalid_range(self):
        with pytest.raises(ValueError, match="range"):
            quantize_reading(1.0, (5.0, 5.0), 8)

    @given(st.integers(min_value=0, max_value=4095))
    def test_code_bits_roundtrip(self, code):
        assert bits_to_code(code_to_bits(code, 12)) == code

    def test_bits_msb_first(self):
        bits = code_to_bits(0b100000000001, 12)
        assert bits[0] == 1 and bits[-1] == 1 and bits[1:-1].sum() == 0


class TestSensorNode:
    def test_reading_near_field_value(self):
        field = EnvironmentField(microclimate_sigma=0.0)
        sensor = SensorNode(sensor_id=0, u=0.5, v=0.5, noise_c=0.0)
        assert sensor.read_temperature(field, rng=0) == pytest.approx(
            field.temperature(0.5, 0.5), abs=1e-9
        )

    def test_noise_applied(self):
        field = EnvironmentField()
        sensor = SensorNode(sensor_id=0, u=0.5, v=0.5, noise_c=0.5)
        rng = np.random.default_rng(0)
        readings = [sensor.read_temperature(field, rng) for _ in range(200)]
        assert np.std(readings) == pytest.approx(0.5, rel=0.25)

    def test_center_distance(self):
        assert SensorNode(0, 0.5, 0.5).center_distance() == 0.0
        corner = SensorNode(0, 0.0, 0.0).center_distance()
        assert corner == pytest.approx(np.sqrt(0.5))

    def test_codes_in_range(self):
        field = EnvironmentField()
        sensor = SensorNode(0, 0.3, 0.7, floor=2)
        rng = np.random.default_rng(1)
        assert 0 <= sensor.temperature_code(field, 12, rng) < 4096
        assert 0 <= sensor.humidity_code(field, 12, rng) < 4096

    def test_colocated_sensors_share_msbs(self):
        from repro.sensing import msb_overlap

        field = EnvironmentField(rng_seed=2)
        rng = np.random.default_rng(2)
        codes = [
            SensorNode(i, 0.50 + 0.01 * i, 0.50, noise_c=0.05).temperature_code(
                field, 12, rng
            )
            for i in range(5)
        ]
        assert msb_overlap(codes, 12) >= 4
