"""Tests for MSB-overlap analysis and data splicing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sensing import consensus_bits, merge_chunks, msb_overlap, splice_bits
from repro.sensing.correlation import group_value_estimate
from repro.sensing.sensors import bits_to_code, code_to_bits


class TestMsbOverlap:
    def test_identical_codes_full_overlap(self):
        assert msb_overlap([0b101010101010] * 5, 12) == 12

    def test_single_code(self):
        assert msb_overlap([7], 12) == 12

    def test_empty(self):
        assert msb_overlap([], 12) == 0

    def test_known_prefix(self):
        codes = [0b111100000000, 0b111100001111, 0b111101010101]
        assert msb_overlap(codes, 12) == 5  # first disagreement at bit 5

    @given(
        st.integers(min_value=0, max_value=4095),
        st.integers(min_value=0, max_value=63),
    )
    @settings(max_examples=40, deadline=None)
    def test_nearby_values_share_msbs(self, base, delta):
        # Values within 64 LSBs of each other share at least the top 5 bits
        # unless they straddle a power-of-two boundary... so assert the
        # weaker monotone property: overlap of [v, v] >= overlap of [v, v+d].
        full = msb_overlap([base, base], 12)
        partial = msb_overlap([base, min(base + delta, 4095)], 12)
        assert full >= partial


class TestConsensus:
    def test_majority_wins(self):
        codes = [0b1000, 0b1000, 0b0000]
        assert list(consensus_bits(codes, 4)) == [1, 0, 0, 0]

    def test_tie_goes_to_zero(self):
        codes = [0b1000, 0b0000]
        assert consensus_bits(codes, 4)[0] == 0

    def test_group_value_estimate_midpoint_fill(self):
        codes = [0b110000000000] * 4
        estimate = group_value_estimate(codes, 12, recovered_prefix=4)
        bits = code_to_bits(estimate, 12)
        assert list(bits[:4]) == [1, 1, 0, 0]
        assert bits[4] == 1 and bits[5:].sum() == 0

    def test_full_prefix_is_exact(self):
        code = 0b101010111100
        assert group_value_estimate([code], 12, recovered_prefix=12) == code


class TestSplicing:
    @given(st.integers(min_value=0, max_value=4095))
    @settings(max_examples=40, deadline=None)
    def test_splice_merge_roundtrip(self, code):
        bits = code_to_bits(code, 12)
        chunks = splice_bits(bits, [4, 4, 4])
        merged, n_known = merge_chunks(chunks, [4, 4, 4])
        assert bits_to_code(merged) == code
        assert n_known == 12

    def test_missing_tail_chunk_midpoint_filled(self):
        bits = code_to_bits(0b111111111111, 12)
        chunks = splice_bits(bits, [4, 4, 4])
        merged, n_known = merge_chunks([chunks[0], chunks[1], None], [4, 4, 4])
        assert n_known == 8
        assert list(merged[:8]) == [1] * 8
        assert list(merged[8:]) == [1, 0, 0, 0]  # midpoint completion

    def test_missing_middle_chunk_truncates(self):
        bits = code_to_bits(0b111111111111, 12)
        chunks = splice_bits(bits, [4, 4, 4])
        merged, n_known = merge_chunks([chunks[0], None, chunks[2]], [4, 4, 4])
        assert n_known == 4  # only the leading run counts

    def test_splice_validation(self):
        with pytest.raises(ValueError, match="chunk_sizes"):
            splice_bits(np.zeros(12, dtype=np.uint8), [4, 4])
        with pytest.raises(ValueError, match="positive"):
            splice_bits(np.zeros(8, dtype=np.uint8), [8, 0])

    def test_merge_validation(self):
        with pytest.raises(ValueError, match="align"):
            merge_chunks([None], [4, 4])
        with pytest.raises(ValueError, match="expected"):
            merge_chunks([np.zeros(3, dtype=np.uint8)], [4])
