"""Tests for grouping strategies and their error metric."""

import numpy as np
import pytest

from repro.sensing import (
    EnvironmentField,
    SensorNode,
    group_by_center_distance,
    group_by_floor,
    group_random,
    grouping_error,
)
from repro.sensing.sensors import TEMP_RANGE_C


def _sensors(n=36, n_floors=4, rng=None):
    rng = rng or np.random.default_rng(0)
    return [
        SensorNode(
            sensor_id=i,
            u=float(rng.uniform(0.02, 0.98)),
            v=float(rng.uniform(0.02, 0.98)),
            floor=i % n_floors,
        )
        for i in range(n)
    ]


class TestPartitions:
    def test_random_partitions_everyone(self):
        sensors = _sensors()
        groups = group_random(sensors, 4, rng=1)
        ids = sorted(s.sensor_id for g in groups for s in g)
        assert ids == list(range(36))

    def test_random_group_count_validation(self):
        with pytest.raises(ValueError, match="n_groups"):
            group_random(_sensors(), 0)

    def test_floor_groups(self):
        sensors = _sensors()
        groups = group_by_floor(sensors)
        assert len(groups) == 4
        for group in groups:
            floors = {s.floor for s in group}
            assert len(floors) == 1

    def test_center_distance_bands_ordered(self):
        sensors = _sensors()
        bands = group_by_center_distance(sensors, n_bands=3)
        maxima = [max(s.center_distance() for s in band) for band in bands]
        minima = [min(s.center_distance() for s in band) for band in bands]
        for i in range(len(bands) - 1):
            assert maxima[i] <= minima[i + 1] + 1e-9

    def test_center_bands_validation(self):
        with pytest.raises(ValueError, match="n_bands"):
            group_by_center_distance(_sensors(), 0)


class TestGroupingError:
    def test_identical_readings_zero_error(self):
        sensors = _sensors(8)
        readings = {s.sensor_id: 20.0 for s in sensors}
        assert grouping_error([sensors], readings, TEMP_RANGE_C) == 0.0

    def test_error_normalized_by_range(self):
        sensors = _sensors(2)
        readings = {0: 10.0, 1: 20.0}
        error = grouping_error([sensors[:2]], readings, (0.0, 100.0))
        # Median 15, deviations 5 each -> mean 5/100.
        assert error == pytest.approx(0.05)

    def test_invalid_range(self):
        with pytest.raises(ValueError, match="range"):
            grouping_error([], {}, (1.0, 1.0))

    def test_center_distance_beats_random_on_envelope_field(self):
        # The Fig. 11a ordering on a field dominated by the envelope
        # gradient.
        rng = np.random.default_rng(3)
        field = EnvironmentField(microclimate_sigma=0.1, rng_seed=3)
        sensors = _sensors(rng=rng)
        readings = {s.sensor_id: s.read_temperature(field, rng) for s in sensors}
        random_error = grouping_error(
            group_random(sensors, 4, rng=rng), readings, TEMP_RANGE_C
        )
        center_error = grouping_error(
            group_by_center_distance(sensors, 4), readings, TEMP_RANGE_C
        )
        assert center_error < random_error
