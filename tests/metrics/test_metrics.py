"""Tests for evaluation metrics."""

import numpy as np
import pytest

from repro.metrics import (
    gain,
    normalized_resolution_error,
    packet_delivery,
    safe_ratio,
    symbol_accuracy,
)


class TestSymbolAccuracy:
    def test_perfect(self):
        assert symbol_accuracy(np.array([1, 2, 3]), np.array([1, 2, 3])) == 1.0

    def test_partial(self):
        assert symbol_accuracy(np.array([1, 0, 3, 0]), np.array([1, 2, 3, 4])) == 0.5

    def test_length_mismatch_is_zero(self):
        assert symbol_accuracy(np.array([1]), np.array([1, 2])) == 0.0

    def test_empty(self):
        assert symbol_accuracy(np.array([]), np.array([])) == 0.0


class TestPacketDelivery:
    def test_clean_packet_delivered(self):
        stream = np.arange(32)
        assert packet_delivery(stream, stream)

    def test_one_error_in_32_tolerated(self):
        truth = np.arange(32)
        decoded = truth.copy()
        decoded[5] = 99
        assert packet_delivery(decoded, truth)

    def test_heavy_errors_fail(self):
        truth = np.arange(32)
        decoded = truth.copy()
        decoded[:8] = 0
        assert not packet_delivery(decoded, truth)


class TestResolutionError:
    def test_zero_when_exact(self):
        values = np.array([20.0, 21.0])
        assert normalized_resolution_error(values, values, (0.0, 100.0)) == 0.0

    def test_normalization(self):
        error = normalized_resolution_error(
            np.array([10.0]), np.array([20.0]), (0.0, 100.0)
        )
        assert error == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError, match="equal length"):
            normalized_resolution_error(np.array([1.0]), np.array([1.0, 2.0]), (0, 1))
        with pytest.raises(ValueError, match="range"):
            normalized_resolution_error(np.array([1.0]), np.array([1.0]), (1, 1))

    def test_empty(self):
        assert normalized_resolution_error(np.array([]), np.array([]), (0, 1)) == 0.0


class TestRatios:
    def test_gain(self):
        assert gain(10.0, 2.0) == 5.0

    def test_safe_ratio_zero_over_zero(self):
        assert safe_ratio(0.0, 0.0) == 0.0

    def test_safe_ratio_x_over_zero(self):
        assert safe_ratio(5.0, 0.0) == float("inf")
