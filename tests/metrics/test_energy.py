"""Tests for the client energy model."""

import pytest

from repro.mac import NetworkSimulator, NodeConfig, OracleMac, SingleUserPhy
from repro.metrics.energy import (
    RadioEnergyProfile,
    battery_life_report,
    energy_per_delivered_packet,
    energy_report_from_metrics,
    packet_airtime_s,
)
from repro.phy import LoRaParams

PARAMS = LoRaParams(spreading_factor=8, preamble_len=8)


class TestAirtime:
    def test_160_bits_sf8(self):
        # 20 data symbols + 8 preamble at 2.048 ms/symbol.
        assert packet_airtime_s(PARAMS, 160) == pytest.approx(28 * 256 / 125e3)

    def test_minimum_one_symbol(self):
        assert packet_airtime_s(PARAMS, 1) == pytest.approx(9 * 256 / 125e3)


class TestEnergyPerPacket:
    def test_scales_with_retransmissions(self):
        one = energy_per_delivered_packet(PARAMS, 1.0)
        four = energy_per_delivered_packet(PARAMS, 4.0)
        assert four == pytest.approx(4.0 * one)

    def test_magnitude_sane(self):
        # ~57 ms airtime at 120 mW plus a receive window: single-digit mJ.
        energy = energy_per_delivered_packet(PARAMS, 1.0)
        assert 1e-3 < energy < 20e-3

    def test_validation(self):
        with pytest.raises(ValueError, match="transmissions_per_packet"):
            energy_per_delivered_packet(PARAMS, 0.5)
        with pytest.raises(ValueError, match="power"):
            RadioEnergyProfile(tx_power_w=-1.0)


class TestBatteryLife:
    def test_fewer_retransmissions_longer_life(self):
        choir = battery_life_report(PARAMS, transmissions_per_packet=1.4)
        aloha = battery_life_report(PARAMS, transmissions_per_packet=4.0)
        assert choir.battery_life_years > aloha.battery_life_years

    def test_ten_year_class(self):
        # A well-behaved node reporting once a minute should land in the
        # multi-year range the paper's framing assumes.
        report = battery_life_report(PARAMS, transmissions_per_packet=1.0)
        assert 2.0 < report.battery_life_years < 40.0

    def test_report_str(self):
        report = battery_life_report(PARAMS, transmissions_per_packet=1.0)
        assert "mJ" in str(report) and "years" in str(report)

    def test_from_mac_metrics(self):
        nodes = [NodeConfig(i, snr_db=15.0) for i in range(3)]
        sim = NetworkSimulator(PARAMS, SingleUserPhy(PARAMS), OracleMac(), nodes, rng=0)
        metrics = sim.run(10.0)
        report = energy_report_from_metrics(PARAMS, metrics)
        assert report.battery_life_years > 0
