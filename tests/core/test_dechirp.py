"""Tests for dechirping and oversampled spectra."""

import numpy as np
import pytest

from repro.core.dechirp import (
    dechirp_windows,
    evaluate_spectrum_at,
    oversampled_spectrum,
    spectrogram,
    spectrum_bin_positions,
)
from repro.phy import LoRaParams, modulate_symbols

PARAMS = LoRaParams(spreading_factor=8, preamble_len=8)


class TestDechirpWindows:
    def test_shape(self):
        waveform = modulate_symbols(PARAMS, [0, 1, 2, 3])
        windows = dechirp_windows(PARAMS, waveform)
        assert windows.shape == (4, PARAMS.samples_per_symbol)

    def test_partial_window_dropped(self):
        waveform = modulate_symbols(PARAMS, [0, 1])
        truncated = waveform[:-10]
        windows = dechirp_windows(PARAMS, truncated)
        assert windows.shape[0] == 1

    def test_start_offset(self):
        waveform = modulate_symbols(PARAMS, [5, 6, 7])
        windows = dechirp_windows(PARAMS, waveform, start=PARAMS.samples_per_symbol)
        spectrum = np.abs(np.fft.fft(windows[0]))
        assert np.argmax(spectrum) == 6

    def test_n_windows_cap(self):
        waveform = modulate_symbols(PARAMS, [0] * 5)
        windows = dechirp_windows(PARAMS, waveform, n_windows=3)
        assert windows.shape[0] == 3

    def test_empty_when_too_short(self):
        windows = dechirp_windows(PARAMS, np.zeros(10, dtype=complex))
        assert windows.shape == (0, PARAMS.samples_per_symbol)

    def test_each_window_is_pure_tone(self):
        symbols = [10, 200, 45]
        waveform = modulate_symbols(PARAMS, symbols)
        windows = dechirp_windows(PARAMS, waveform)
        for window, symbol in zip(windows, symbols):
            spectrum = np.abs(np.fft.fft(window))
            assert np.argmax(spectrum) == symbol


class TestOversampledSpectrum:
    def test_length(self):
        window = np.ones(256, dtype=complex)
        assert oversampled_spectrum(window, 10).size == 2560

    def test_stacked_windows(self):
        windows = np.ones((3, 256), dtype=complex)
        assert oversampled_spectrum(windows, 4).shape == (3, 1024)

    def test_peak_position_fractional(self):
        n = 256
        tone = np.exp(2j * np.pi * 50.4 * np.arange(n) / n)
        spectrum = np.abs(oversampled_spectrum(tone, 10))
        assert np.argmax(spectrum) / 10 == pytest.approx(50.4, abs=0.05)

    def test_bin_positions(self):
        positions = spectrum_bin_positions(256, 10)
        assert positions.size == 2560
        assert positions[10] == pytest.approx(1.0)


class TestEvaluateSpectrumAt:
    def test_matches_fft_on_grid(self):
        rng = np.random.default_rng(0)
        window = rng.normal(size=256) + 1j * rng.normal(size=256)
        fft = np.fft.fft(window)
        values = evaluate_spectrum_at(window, np.arange(256, dtype=float))
        assert np.allclose(values, fft, atol=1e-8)

    def test_exact_at_fractional_tone(self):
        n = 256
        mu = 31.37
        tone = np.exp(2j * np.pi * mu * np.arange(n) / n)
        value = evaluate_spectrum_at(tone, np.array([mu]))
        assert abs(value[0]) == pytest.approx(n, rel=1e-9)


class TestSpectrogram:
    def test_shapes_consistent(self):
        waveform = modulate_symbols(PARAMS, [0, 1])
        times, freqs, magnitude = spectrogram(PARAMS, waveform)
        assert magnitude.shape == (times.size, freqs.size)

    def test_chirp_sweeps_through_band(self):
        waveform = modulate_symbols(PARAMS, [0])
        _, freqs, magnitude = spectrogram(PARAMS, waveform, window_len=32, hop=8)
        peak_freqs = freqs[np.argmax(magnitude, axis=1)]
        # The sweep should visit both band edges.
        assert peak_freqs.min() < -PARAMS.bandwidth / 4
        assert peak_freqs.max() > PARAMS.bandwidth / 4
