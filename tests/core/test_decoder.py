"""End-to-end tests for the ChoirDecoder."""

import numpy as np
import pytest

from repro.core import ChoirDecoder
from repro.phy import LoRaFramer
from repro.utils import circular_distance
from tests.core.conftest import PARAMS, make_collision, make_radio

N_BINS = PARAMS.chips_per_symbol


def _match(decoded_users, packet, stream_index):
    """Find the decoded user matching ground-truth user `stream_index`."""
    truth = packet.users[stream_index].true_offset_bins(PARAMS) % N_BINS
    best, best_d = None, 0.5
    for du in decoded_users:
        d = circular_distance(du.offset_bins, truth, period=N_BINS)
        if d < best_d:
            best, best_d = du, d
    return best


class TestTwoUserDecode:
    def test_perfect_at_high_snr(self):
        rng = np.random.default_rng(0)
        packet, streams = make_collision(rng, [(12.4, 2.6, 20.0), (90.7, 7.2, 15.0)])
        decoder = ChoirDecoder(PARAMS, rng=rng)
        users = decoder.decode(packet.samples, streams[0].size)
        assert len(users) == 2
        for k in range(2):
            du = _match(users, packet, k)
            assert du is not None
            assert np.array_equal(du.symbols, streams[k])

    def test_low_snr_pair(self):
        rng = np.random.default_rng(1)
        packet, streams = make_collision(rng, [(12.4, 1.0, 2.2), (90.7, 3.0, 2.0)])
        decoder = ChoirDecoder(PARAMS, rng=rng)
        users = decoder.decode(packet.samples, streams[0].size)
        for k in range(2):
            du = _match(users, packet, k)
            assert du is not None
            assert np.mean(du.symbols == streams[k]) > 0.9

    def test_near_far_30db(self):
        rng = np.random.default_rng(2)
        packet, streams = make_collision(rng, [(50.45, 3.1, 60.0), (20.8, 6.4, 2.0)])
        decoder = ChoirDecoder(PARAMS, rng=rng)
        users = decoder.decode(packet.samples, streams[0].size)
        weak = _match(users, packet, 1)
        assert weak is not None
        assert np.mean(weak.symbols == streams[1]) > 0.85


class TestMultiUserDecode:
    def test_five_users_well_separated(self):
        rng = np.random.default_rng(3)
        users_cfg = [
            (15.2, 1.0, 25.0),
            (60.7, 3.0, 18.0),
            (110.4, 5.0, 12.0),
            (170.9, 7.0, 8.0),
            (220.3, 9.0, 5.0),
        ]
        packet, streams = make_collision(rng, users_cfg)
        decoder = ChoirDecoder(PARAMS, rng=rng)
        users = decoder.decode(packet.samples, streams[0].size)
        accuracies = []
        for k in range(5):
            du = _match(users, packet, k)
            assert du is not None
            accuracies.append(np.mean(du.symbols == streams[k]))
        assert np.mean(accuracies) > 0.9

    def test_merged_offsets_lose_gracefully(self):
        # Two users 0.2 bins apart merge (paper: overlapping offsets bound
        # the gains) -- but a third well-separated user must still decode.
        rng = np.random.default_rng(4)
        packet, streams = make_collision(
            rng, [(50.4, 0.0, 20.0), (50.6, 0.0, 18.0), (150.9, 0.0, 15.0)]
        )
        decoder = ChoirDecoder(PARAMS, rng=rng)
        users = decoder.decode(packet.samples, streams[0].size)
        third = _match(users, packet, 2)
        assert third is not None
        assert np.mean(third.symbols == streams[2]) > 0.85


class TestDecodeNoUsers:
    def test_noise_only_returns_empty(self):
        rng = np.random.default_rng(5)
        noise = (rng.normal(size=20 * 256) + 1j * rng.normal(size=20 * 256)) / np.sqrt(2)
        decoder = ChoirDecoder(PARAMS, threshold_snr=5.0, rng=rng)
        assert decoder.decode(noise, 4) in ([],) or len(decoder.decode(noise, 4)) <= 1


class TestPayloadDecode:
    def test_end_to_end_payloads(self):
        rng = np.random.default_rng(6)
        framer = LoRaFramer(PARAMS, coding_rate=4)
        payloads = [b"node-A temp=21.4", b"node-B temp=22.9"]
        frames = [framer.encode(p) for p in payloads]
        n_sym = frames[0].n_symbols
        packet, _ = make_collision(
            rng,
            [(30.3, 2.0, 15.0), (130.9, 5.0, 12.0)],
            symbols=[f.symbols for f in frames],
        )
        decoder = ChoirDecoder(PARAMS, rng=rng)
        users = decoder.decode(packet.samples, n_sym)
        recovered = set()
        for du in users:
            result = du.decode_payload(framer, len(payloads[0]))
            if result.crc_ok:
                recovered.add(result.payload)
        assert recovered == set(payloads)


class TestTeamDecode:
    def test_below_noise_team(self):
        rng = np.random.default_rng(7)
        shared = rng.integers(0, N_BINS, 10)
        users_cfg = [(rng.uniform(0, 250), rng.uniform(0, 6), 0.33) for _ in range(10)]
        packet, _ = make_collision(rng, users_cfg, symbols=[shared] * 10)
        decoder = ChoirDecoder(PARAMS, rng=rng)
        result = decoder.decode_team(packet.samples, shared.size)
        assert result.detected
        assert result.n_members_detected >= 4
        assert np.mean(result.symbols == shared) > 0.9

    def test_single_below_noise_node_not_decodable(self):
        rng = np.random.default_rng(8)
        shared = rng.integers(0, N_BINS, 10)
        packet, _ = make_collision(rng, [(80.3, 2.0, 0.12)], symbols=[shared])
        decoder = ChoirDecoder(PARAMS, rng=rng)
        result = decoder.decode_team(packet.samples, shared.size)
        accuracy = (
            np.mean(result.symbols == shared) if result.detected else 0.0
        )
        assert accuracy < 0.6

    def test_no_packet_returns_not_detected(self):
        rng = np.random.default_rng(9)
        noise = (rng.normal(size=24 * 256) + 1j * rng.normal(size=24 * 256)) / np.sqrt(2)
        decoder = ChoirDecoder(PARAMS, rng=rng)
        result = decoder.decode_team(noise, 8)
        assert not result.detected
        assert result.symbols.size == 0
