"""Tests for constrained user clustering (Sec. 6.2)."""

import numpy as np
import pytest

from repro.core.peaks import Peak
from repro.core.tracking import (
    ConstrainedClusterer,
    PeakFeatures,
    UserCentroid,
    assign_peaks_to_users,
    centroids_from_estimates,
)
from repro.core.offsets import UserEstimate


def _peak(position, magnitude=10.0):
    return Peak(position_bins=position, amplitude=magnitude + 0j, snr=10.0)


def _windows_for_users(user_fracs, user_mags, data, rng):
    """Simulate per-window peak lists for users with given signatures."""
    windows = []
    for m in range(data.shape[1]):
        peaks = []
        for k, (frac, mag) in enumerate(zip(user_fracs, user_mags)):
            position = (data[k, m] + frac) % 256
            noisy_mag = mag * (1 + rng.normal(0, 0.05))
            peaks.append(_peak(position, noisy_mag))
        rng.shuffle(peaks)
        windows.append(peaks)
    return windows


class TestAssignment:
    def test_matches_by_fraction(self):
        centroids = [UserCentroid(0.2, np.log(10)), UserCentroid(0.7, np.log(10))]
        peaks = [_peak(100.72), _peak(31.18)]
        assignment = assign_peaks_to_users(peaks, centroids)
        assert assignment[0].position_bins == pytest.approx(31.18)
        assert assignment[1].position_bins == pytest.approx(100.72)

    def test_cannot_link_within_window(self):
        # Two peaks, one centroid matching both: only one peak assigned.
        centroids = [UserCentroid(0.5, np.log(10))]
        peaks = [_peak(10.5), _peak(20.5)]
        assignment = assign_peaks_to_users(peaks, centroids)
        assert len(assignment) == 1

    def test_distance_gate(self):
        centroids = [UserCentroid(0.0, np.log(10))]
        peaks = [_peak(77.5)]  # frac 0.5, distance 0.5 > gate
        assignment = assign_peaks_to_users(peaks, centroids, max_distance=0.3)
        assert assignment == {}

    def test_empty_inputs(self):
        assert assign_peaks_to_users([], [UserCentroid(0.1, 0.0)]) == {}
        assert assign_peaks_to_users([_peak(1.0)], []) == {}

    def test_circular_fraction_distance(self):
        centroids = [UserCentroid(0.98, np.log(10))]
        peaks = [_peak(50.02)]  # frac 0.02, circular distance 0.04
        assignment = assign_peaks_to_users(peaks, centroids, max_distance=0.1)
        assert 0 in assignment


class TestClusterer:
    def test_seeded_clustering_tracks_users(self):
        rng = np.random.default_rng(0)
        fracs = [0.17, 0.63]
        mags = [20.0, 10.0]
        data = rng.integers(0, 256, size=(2, 12))
        windows = _windows_for_users(fracs, mags, data, rng)
        seeds = [UserCentroid(f, np.log(m)) for f, m in zip(fracs, mags)]
        clusterer = ConstrainedClusterer(2, seeds=seeds)
        assignments = clusterer.cluster(windows)
        for m, assignment in enumerate(assignments):
            for user in (0, 1):
                value = int(np.round(assignment[user].position_bins - fracs[user])) % 256
                assert value == data[user, m]

    def test_cold_start_separates_users(self):
        rng = np.random.default_rng(1)
        fracs = [0.11, 0.52, 0.86]
        mags = [20.0, 15.0, 10.0]
        data = rng.integers(0, 256, size=(3, 16))
        windows = _windows_for_users(fracs, mags, data, rng)
        clusterer = ConstrainedClusterer(3)
        assignments = clusterer.cluster(windows)
        # Every window should assign all three users.
        assert all(len(a) == 3 for a in assignments)
        # Check assignment consistency: each cluster's fractional spread is
        # tight even without seeding.
        for user in range(3):
            fracs_seen = [a[user].fractional for a in assignments]
            spread = max(fracs_seen) - min(fracs_seen)
            assert spread < 0.15 or spread > 0.85  # tight (allowing wrap)

    def test_invalid_user_count(self):
        with pytest.raises(ValueError, match="n_users"):
            ConstrainedClusterer(0)

    def test_empty_windows(self):
        clusterer = ConstrainedClusterer(2)
        assert clusterer.cluster([[], []]) == [{}, {}]

    def test_centroids_from_estimates(self):
        estimates = [
            UserEstimate(position_bins=10.3, channels=np.full(3, 2.0 + 0j)),
            UserEstimate(position_bins=99.8, channels=np.full(3, 1.0 + 0j)),
        ]
        centroids = centroids_from_estimates(estimates)
        assert centroids[0].fractional == pytest.approx(0.3)
        assert centroids[1].fractional == pytest.approx(0.8)
        assert centroids[0].log_magnitude > centroids[1].log_magnitude


class TestPeakFeatures:
    def test_from_peak(self):
        peak = Peak(position_bins=42.25, amplitude=4 + 3j, snr=5.0)
        features = PeakFeatures.from_peak(peak)
        assert features.fractional == pytest.approx(0.25)
        assert features.log_magnitude == pytest.approx(np.log(5.0))
