"""Tests for inter-symbol-interference de-duplication (Sec. 6.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.isi import WindowObservation, deduplicate_symbol_streams, expected_peak_count


def _observations_for_stream(stream, delay_frac, n=256):
    """Build the window observations a delayed user produces.

    Window m contains the previous symbol (weight ~ delay) and the current
    one (weight ~ 1 - delay), mirroring the physical energy split.
    """
    observations = []
    prev = 0  # preamble
    for current in stream:
        observations.append(
            WindowObservation(
                values=(int(prev), int(current)),
                weights=(delay_frac * n, (1 - delay_frac) * n),
            )
        )
        prev = current
    return observations


class TestDeduplication:
    @given(
        st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=20),
        st.floats(min_value=0.02, max_value=0.45),
    )
    @settings(max_examples=40, deadline=None)
    def test_recovers_stream_small_delay(self, stream, delay_frac):
        observations = _observations_for_stream(stream, delay_frac)
        recovered = deduplicate_symbol_streams(observations, delay_frac * 256, 256)
        assert recovered == [int(s) for s in stream]

    @given(
        st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=20),
        st.floats(min_value=0.55, max_value=0.95),
    )
    @settings(max_examples=40, deadline=None)
    def test_recovers_stream_large_delay(self, stream, delay_frac):
        observations = _observations_for_stream(stream, delay_frac)
        recovered = deduplicate_symbol_streams(observations, delay_frac * 256, 256)
        assert recovered == [int(s) for s in stream]

    def test_repeated_symbols(self):
        stream = [7, 7, 7, 9, 9]
        observations = _observations_for_stream(stream, 0.2)
        recovered = deduplicate_symbol_streams(observations, 0.2 * 256, 256)
        assert recovered == stream

    def test_single_value_windows(self):
        # Aligned user: one peak per window.
        observations = [
            WindowObservation(values=(5,), weights=(256.0,)),
            WindowObservation(values=(9,), weights=(256.0,)),
        ]
        recovered = deduplicate_symbol_streams(observations, 0.0, 256)
        assert recovered == [5, 9]

    def test_empty_observation_is_erasure(self):
        observations = [
            WindowObservation(values=(5, 1), weights=(50.0, 200.0)),
            WindowObservation(values=(), weights=()),
            WindowObservation(values=(1, 7), weights=(50.0, 200.0)),
        ]
        recovered = deduplicate_symbol_streams(observations, 50.0, 256)
        assert len(recovered) == 2

    def test_empty_input(self):
        assert deduplicate_symbol_streams([], 5.0, 256) == []

    def test_mismatched_weights_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            WindowObservation(values=(1, 2), weights=(1.0,))


class TestExpectedPeakCount:
    def test_aligned_user_one_peak(self):
        assert expected_peak_count(0.0, 256) == 1
        assert expected_peak_count(256.0, 256) == 1

    def test_offset_user_two_peaks(self):
        assert expected_peak_count(10.0, 256) == 2
