"""Engine-vs-scalar agreement: the vectorized residual engine is a pure
optimization and must reproduce the scalar reference paths bit-for-bit
(well, to 1e-9) across offsets, delays, window counts and user counts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chanest import estimate_channels, tone_matrix
from repro.core.engine import (
    CandidateView,
    ResidualEngine,
    _cached_column,
    _phasor_columns,
)
from repro.core.offsets import refine_offsets
from repro.core.residual import residual_power, residual_surface

N_SAMPLES = 64


def _windows(rng, positions, n_windows=5, delays=None, noise=0.3):
    """Synthetic dechirped windows with tones at ``positions`` (+ glitches)."""
    positions = np.asarray(positions, dtype=float)
    k = positions.size
    channels = rng.normal(size=(n_windows, k)) + 1j * rng.normal(
        size=(n_windows, k)
    )
    if delays is None:
        basis = tone_matrix(positions, N_SAMPLES)
    else:
        basis = np.column_stack(
            [
                _cached_column(N_SAMPLES, positions[i], float(delays[i]))
                for i in range(k)
            ]
        )
    out = (basis @ channels.T).T
    return out + noise * (
        rng.normal(size=(n_windows, N_SAMPLES))
        + 1j * rng.normal(size=(n_windows, N_SAMPLES))
    )


positions_st = st.lists(
    st.floats(min_value=2.0, max_value=N_SAMPLES - 4.0),
    min_size=1,
    max_size=4,
    unique_by=lambda x: round(x),  # keep tones >= ~1 bin apart
)


class TestResidualAgreement:
    @settings(max_examples=40, deadline=None)
    @given(
        positions=positions_st,
        n_windows=st.integers(min_value=1, max_value=7),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_matches_scalar_reference(self, positions, n_windows, seed):
        rng = np.random.default_rng(seed)
        positions = np.sort(np.asarray(positions))
        windows = _windows(rng, positions, n_windows=n_windows)
        scalar = residual_power(windows, positions)
        vectorized = ResidualEngine(windows).residual(positions)
        assert abs(vectorized - scalar) <= 1e-9 * max(1.0, abs(scalar))

    @settings(max_examples=40, deadline=None)
    @given(
        positions=positions_st,
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        delay_scale=st.floats(min_value=0.0, max_value=8.0),
    )
    def test_matches_scalar_with_delays(self, positions, seed, delay_scale):
        rng = np.random.default_rng(seed)
        positions = np.sort(np.asarray(positions))
        delays = rng.uniform(0.0, max(delay_scale, 1e-6), positions.size)
        windows = _windows(rng, positions, delays=delays)
        scalar = residual_power(windows, positions, delays_samples=delays)
        vectorized = ResidualEngine(windows).residual(positions, delays)
        assert abs(vectorized - scalar) <= 1e-9 * max(1.0, abs(scalar))

    def test_channels_match_scalar(self):
        rng = np.random.default_rng(3)
        positions = np.array([11.3, 30.8, 47.1])
        windows = _windows(rng, positions)
        expected = estimate_channels(windows, positions)
        np.testing.assert_allclose(
            ResidualEngine(windows).channels(positions), expected, atol=1e-9
        )

    def test_single_window_1d_input(self):
        rng = np.random.default_rng(4)
        positions = np.array([20.4])
        windows = _windows(rng, positions, n_windows=1)
        scalar = residual_power(windows[0], positions)
        vectorized = ResidualEngine(windows[0]).residual(positions)
        assert vectorized == pytest.approx(scalar, rel=1e-9)

    def test_empty_positions(self):
        rng = np.random.default_rng(5)
        windows = _windows(rng, [15.0])
        empty = np.array([])
        scalar = residual_power(windows, empty)
        vectorized = ResidualEngine(windows).residual(empty)
        assert vectorized == pytest.approx(scalar, rel=1e-12)
        assert vectorized == pytest.approx(float(np.sum(np.abs(windows) ** 2)))


class TestBatchedCandidates:
    def test_residuals_at_matches_loop(self):
        rng = np.random.default_rng(6)
        positions = np.array([14.2, 40.6])
        windows = _windows(rng, positions)
        engine = ResidualEngine(windows)
        candidates = np.stack(
            [positions + rng.uniform(-0.4, 0.4, 2) for _ in range(25)]
        )
        batched = engine.residuals_at(candidates)
        looped = [residual_power(windows, cand) for cand in candidates]
        np.testing.assert_allclose(batched, looped, rtol=1e-9)

    def test_candidate_view_matches_full_model(self):
        # Schur-complement scoring of the varied column must equal a full
        # solve with all K columns present.
        rng = np.random.default_rng(7)
        positions = np.array([10.7, 25.2, 50.9])
        windows = _windows(rng, positions)
        engine = ResidualEngine(windows)
        view = CandidateView(engine, positions[1:], None)
        mus = positions[0] + np.linspace(-0.5, 0.5, 21)
        schur = view.residuals(mus)
        full = [
            residual_power(windows, np.concatenate([[mu], positions[1:]]))
            for mu in mus
        ]
        np.testing.assert_allclose(schur, full, rtol=1e-9)

    def test_prefix_sum_delay_batch_matches_scalar(self):
        # repeat(mu_grid, D) x tile(delta_grid) batches take the prefix-sum
        # correlation path (no materialized columns); it must agree with
        # the scalar per-candidate reference.
        rng = np.random.default_rng(12)
        positions = np.array([10.7, 25.2, 50.9])
        fixed_delays = np.array([2.3, 0.0])
        windows = _windows(rng, positions)
        engine = ResidualEngine(windows)
        view = CandidateView(engine, positions[1:], fixed_delays)
        mu_grid = positions[0] + np.linspace(-0.4, 0.4, 7)
        delta_grid = np.linspace(0.0, 12.0, 13)
        mus = np.repeat(mu_grid, delta_grid.size)
        deltas = np.tile(delta_grid, mu_grid.size)
        fast = view.residuals(mus, deltas)
        ref = [
            residual_power(
                windows,
                np.array([m, *positions[1:]]),
                delays_samples=np.array([d, *fixed_delays]),
            )
            for m, d in zip(mus, deltas)
        ]
        np.testing.assert_allclose(fast, ref, rtol=1e-9)

    def test_refine_matches_scalar_refinement(self):
        rng = np.random.default_rng(8)
        truth = np.array([18.37, 44.81])
        windows = _windows(rng, truth, noise=0.1)
        coarse = truth + np.array([0.2, -0.15])
        engine_pos = ResidualEngine(windows).refine(coarse)
        scalar_pos = refine_offsets(windows, coarse, method="coordinate-scalar")
        np.testing.assert_allclose(engine_pos, scalar_pos, atol=5e-3)
        np.testing.assert_allclose(engine_pos, truth, atol=0.05)


class TestCaches:
    def test_cached_column_is_readonly_and_stable(self):
        col = _cached_column(N_SAMPLES, 12.25, 3.0)
        assert not col.flags.writeable
        again = _cached_column(N_SAMPLES, 12.25, 3.0)
        assert again is col  # lru_cache hit, not a recomputation

    def test_phasor_columns_uniform_grid_matches_dense(self):
        # The geometric-progression fast path must agree with the dense
        # outer-product exponential it replaces.
        n = np.arange(N_SAMPLES, dtype=float)
        mus = np.linspace(17.1, 17.9, 33)
        fast = _phasor_columns(n, mus, N_SAMPLES)
        dense = np.exp(2j * np.pi * np.outer(n, mus) / N_SAMPLES)
        np.testing.assert_allclose(fast, dense, atol=1e-10)

    def test_phasor_columns_nonuniform_grid(self):
        n = np.arange(N_SAMPLES, dtype=float)
        mus = np.array([3.0, 3.5, 9.25])
        fast = _phasor_columns(n, mus, N_SAMPLES)
        dense = np.exp(2j * np.pi * np.outer(n, mus) / N_SAMPLES)
        np.testing.assert_allclose(fast, dense, atol=1e-12)


class TestSurfaceRegression:
    def test_batched_surface_matches_scalar_loop(self):
        # residual_surface now evaluates one batched residuals_at call; it
        # must agree with the cell-by-cell scalar evaluation it replaced.
        rng = np.random.default_rng(9)
        centers = np.array([20.3, 47.7])
        windows = _windows(rng, centers, noise=0.05)
        g1, g2, surface = residual_surface(
            windows, centers, span_bins=0.5, n_points=9
        )
        expected = np.empty_like(surface)
        for i, a in enumerate(g1):
            for j, b in enumerate(g2):
                expected[i, j] = residual_power(windows, np.array([a, b]))
        np.testing.assert_allclose(surface, expected, rtol=1e-9)
