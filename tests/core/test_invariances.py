"""Property tests: invariances the receiver must respect.

A receiver's decisions may not depend on quantities the channel does not
preserve: absolute carrier phase, absolute amplitude (within dynamic
range), or the noise realization's seed plumbing.  These tests pin those
invariances down, several via hypothesis.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ChoirDecoder
from repro.core.chanest import estimate_channels, reconstruct_tones
from repro.core.dechirp import oversampled_spectrum
from repro.core.peaks import find_peaks
from repro.core.residual import residual_power
from tests.core.conftest import PARAMS, make_collision


def _decode_symbols(samples, n_symbols, seed=1):
    decoder = ChoirDecoder(PARAMS, rng=np.random.default_rng(seed))
    users = decoder.decode(samples, n_symbols)
    return sorted(
        (round(u.offset_bins, 2), tuple(u.symbols.tolist())) for u in users
    )


class TestDecoderInvariances:
    @given(st.floats(min_value=0.0, max_value=2 * np.pi))
    @settings(max_examples=8, deadline=None)
    def test_global_phase_rotation(self, phase):
        rng = np.random.default_rng(0)
        packet, streams = make_collision(rng, [(12.4, 2.6, 15.0), (90.7, 7.2, 12.0)])
        baseline = _decode_symbols(packet.samples, streams[0].size)
        rotated = _decode_symbols(packet.samples * np.exp(1j * phase), streams[0].size)
        assert rotated == baseline

    @given(st.floats(min_value=0.5, max_value=4.0))
    @settings(max_examples=8, deadline=None)
    def test_global_amplitude_scale(self, scale):
        # Scaling signal AND noise together changes nothing (SNR constant).
        rng = np.random.default_rng(1)
        packet, streams = make_collision(rng, [(12.4, 2.6, 15.0), (90.7, 7.2, 12.0)])
        baseline = _decode_symbols(packet.samples, streams[0].size)
        scaled = _decode_symbols(packet.samples * scale, streams[0].size)
        assert scaled == baseline

    def test_rng_isolation(self):
        # The decoder's internal rng must not affect the decisions on a
        # clean capture (it only seeds optimizer restarts).
        rng = np.random.default_rng(2)
        packet, streams = make_collision(rng, [(30.3, 2.0, 15.0), (130.9, 5.0, 12.0)])
        a = _decode_symbols(packet.samples, streams[0].size, seed=1)
        b = _decode_symbols(packet.samples, streams[0].size, seed=999)
        assert a == b


class TestEstimatorInvariances:
    @given(st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=15, deadline=None)
    def test_channel_estimation_linear(self, scale):
        positions = np.array([17.3, 200.8])
        true_h = np.array([1.0 + 0.5j, -0.4 + 2.0j])
        signal = reconstruct_tones(positions, true_h, 256)
        estimated = estimate_channels(signal * scale, positions)
        assert np.allclose(estimated, true_h * scale, atol=1e-9)

    @given(st.floats(min_value=0.0, max_value=2 * np.pi))
    @settings(max_examples=15, deadline=None)
    def test_residual_phase_invariant(self, phase):
        rng = np.random.default_rng(3)
        signal = reconstruct_tones(
            np.array([50.4]), np.array([3.0 + 0j]), 256
        ) + (rng.normal(size=256) + 1j * rng.normal(size=256)) * 0.1
        base = residual_power(signal, np.array([50.4]))
        rotated = residual_power(signal * np.exp(1j * phase), np.array([50.4]))
        assert rotated == pytest.approx(base, rel=1e-9)

    @given(st.floats(min_value=0.2, max_value=5.0), st.floats(min_value=0, max_value=2 * np.pi))
    @settings(max_examples=15, deadline=None)
    def test_peak_positions_scale_and_phase_invariant(self, scale, phase):
        rng = np.random.default_rng(4)
        signal = (
            10 * np.exp(2j * np.pi * 42.3 * np.arange(256) / 256)
            + (rng.normal(size=256) + 1j * rng.normal(size=256)) / np.sqrt(2)
        )
        base = find_peaks(oversampled_spectrum(signal, 10), 10, max_peaks=1)
        transformed = find_peaks(
            oversampled_spectrum(signal * scale * np.exp(1j * phase), 10),
            10,
            max_peaks=1,
        )
        assert transformed[0].position_bins == pytest.approx(
            base[0].position_bins, abs=1e-9
        )

    def test_residual_nonnegative_and_monotone_in_model_size(self):
        # Adding a tone to the model can only reduce the LS residual.
        rng = np.random.default_rng(5)
        signal = (rng.normal(size=256) + 1j * rng.normal(size=256)) / np.sqrt(2)
        r1 = residual_power(signal, np.array([10.0]))
        r2 = residual_power(signal, np.array([10.0, 77.7]))
        assert r2 <= r1 + 1e-9
        assert r2 >= 0.0
