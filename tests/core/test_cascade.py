"""Tests for the tiered decode cascade (policy layer over the fast path).

Covers the contract ISSUE 8 rests on: build_pipeline is the only tier
selector, clean windows stay on Tier 0, every doubt (collision,
ambiguity, missing preamble, short window, CRC failure) escalates to the
full Choir pipeline, and escalated windows produce results identical to
running the full pipeline directly.
"""

from contextlib import contextmanager

import numpy as np
import pytest

from repro.channel.noise import awgn
from repro.core.cascade import (
    DECODE_TIERS,
    ESCALATION_REASONS,
    REASON_COLLIDED,
    REASON_CRC_FAIL,
    REASON_TRUNCATED,
    TIER0,
    TIER_FULL,
    CascadePipeline,
    ChoirPipeline,
    UserFrame,
    WindowDecode,
    build_pipeline,
)
from repro.hardware import LoRaRadio, OscillatorModel, TimingModel
from repro.phy.packet import LoRaFramer
from repro.phy.params import LoRaParams

PARAMS = LoRaParams(spreading_factor=7)
PAYLOAD = b"ab12"


def _frame_in_window(params, seed=0, snr_db=15.0, symbols=None, payload=PAYLOAD):
    """One frame inside the gateway-style window (2-symbol lead, 1 tail)."""
    rng = np.random.default_rng(seed)
    radio = LoRaRadio(params, node_id=0, rng=rng)
    amplitude = 10 ** (snr_db / 20)
    if symbols is None:
        waveform, _, symbols = radio.transmit_payload(payload, amplitude=amplitude)
    else:
        waveform, _ = radio.transmit_symbols(symbols, amplitude=amplitude)
    n = params.samples_per_symbol
    window = np.concatenate(
        [
            np.zeros(2 * n, dtype=complex),
            waveform,
            np.zeros(n, dtype=complex),
        ]
    )
    return awgn(window, 1.0, rng=rng), np.asarray(symbols)


def _collided_window(params, seed=0, n_users=2, payload=PAYLOAD):
    """Fully overlapping users with well-separated offsets (Choir regime)."""
    rng = np.random.default_rng(seed)
    n = params.samples_per_symbol
    window = None
    for u in range(n_users):
        cfo_bins = 3.0 + u * (params.chips_per_symbol - 10.0) / n_users
        radio = LoRaRadio(
            params,
            oscillator=OscillatorModel(params.bins_to_hz(cfo_bins)),
            timing=TimingModel(rng.uniform(0.0, 8.0) / params.sample_rate),
            node_id=u,
            rng=rng,
        )
        amplitude = 10 ** (rng.uniform(12.0, 18.0) / 20)
        waveform, _, _ = radio.transmit_payload(payload, amplitude=amplitude)
        if window is None:
            window = np.concatenate(
                [
                    np.zeros(2 * n, dtype=complex),
                    waveform,
                    np.zeros(n, dtype=complex),
                ]
            )
        else:
            window[2 * n : 2 * n + waveform.size] += waveform
    return awgn(window, 1.0, rng=rng)


def _n_data(params, payload_len=len(PAYLOAD)):
    return LoRaFramer(params).n_symbols_for_payload(payload_len)


class _Recorder:
    """Duck-typed instruments that record counter increments and timers."""

    def __init__(self):
        self.counts = {}
        self.timers = []

    def counter(self, name):
        recorder = self

        class _Counter:
            def inc(self, n=1):
                recorder.counts[name] = recorder.counts.get(name, 0) + n

        return _Counter()

    @contextmanager
    def timer(self, name):
        self.timers.append(name)
        yield


class TestBuildPipeline:
    def test_rejects_unknown_tier(self):
        with pytest.raises(ValueError, match="decode tier"):
            build_pipeline("turbo", PARAMS)

    def test_tier_names_round_trip(self):
        for tier in DECODE_TIERS:
            assert build_pipeline(tier, PARAMS).tier == tier

    def test_full_tier_is_the_choir_pipeline(self):
        assert isinstance(build_pipeline("full", PARAMS), ChoirPipeline)

    def test_cascade_wraps_a_full_escalation_target(self):
        pipeline = build_pipeline("cascade", PARAMS)
        assert isinstance(pipeline, CascadePipeline)
        assert isinstance(pipeline.full, ChoirPipeline)

    def test_fast_tier_has_no_escalation_target(self):
        pipeline = build_pipeline("fast", PARAMS)
        assert isinstance(pipeline, CascadePipeline)
        assert pipeline.full is None


class TestWindowDecodeSemantics:
    def test_tier0_result_is_not_escalated(self):
        result = WindowDecode(users=(), crc_ok=False, tier=TIER0)
        assert not result.escalated

    def test_fast_tier_reason_is_not_escalated(self):
        result = WindowDecode(
            users=(), crc_ok=False, tier=TIER0, escalation_reason=REASON_COLLIDED
        )
        assert not result.escalated

    def test_full_with_reason_is_escalated(self):
        result = WindowDecode(
            users=(), crc_ok=False, tier=TIER_FULL, escalation_reason=REASON_COLLIDED
        )
        assert result.escalated

    def test_plain_full_decode_is_not_escalated(self):
        result = WindowDecode(users=(), crc_ok=False, tier=TIER_FULL)
        assert not result.escalated

    def test_reason_vocabulary_is_closed(self):
        assert set(ESCALATION_REASONS) == {
            "collided",
            "ambiguous",
            "no-preamble-peak",
            "crc-fail",
            "truncated",
        }


class TestCleanWindow:
    def test_clean_window_stays_on_tier0(self):
        samples, _ = _frame_in_window(PARAMS, seed=1)
        result = build_pipeline("cascade", PARAMS).decode_window(
            samples, _n_data(PARAMS), len(PAYLOAD)
        )
        assert result.tier == TIER0
        assert result.escalation_reason is None
        assert result.crc_ok
        assert [u.payload for u in result.users] == [PAYLOAD]

    def test_tier0_payload_matches_full_pipeline(self):
        samples, _ = _frame_in_window(PARAMS, seed=2)
        n_data = _n_data(PARAMS)
        cascade = build_pipeline("cascade", PARAMS).decode_window(
            samples, n_data, len(PAYLOAD)
        )
        full = build_pipeline(
            "full", PARAMS, rng=np.random.default_rng(0), sync_search_symbols=3
        ).decode_window(samples, n_data, len(PAYLOAD))
        assert {u.payload for u in cascade.users if u.crc_ok} == {
            u.payload for u in full.users if u.crc_ok
        }

    def test_clean_window_increments_tier0_counters(self):
        samples, _ = _frame_in_window(PARAMS, seed=3)
        instruments = _Recorder()
        build_pipeline("cascade", PARAMS).decode_window(
            samples, _n_data(PARAMS), len(PAYLOAD), instruments
        )
        assert instruments.counts["decode.tier0.attempts"] == 1
        assert instruments.counts["decode.tier0.ok"] == 1
        assert "decode.escalated" not in instruments.counts


class TestEscalation:
    def test_collision_escalates_with_reason(self):
        samples = _collided_window(PARAMS, seed=4)
        result = build_pipeline(
            "cascade", PARAMS, rng=np.random.default_rng(0), max_users=4
        ).decode_window(samples, _n_data(PARAMS), len(PAYLOAD))
        assert result.tier == TIER_FULL
        assert result.escalation_reason == REASON_COLLIDED
        assert result.escalated

    def test_escalated_result_matches_direct_full_decode(self):
        samples = _collided_window(PARAMS, seed=5)
        n_data = _n_data(PARAMS)
        cascade = build_pipeline(
            "cascade", PARAMS, rng=np.random.default_rng(0), max_users=4
        ).decode_window(samples, n_data, len(PAYLOAD))
        full = build_pipeline(
            "full", PARAMS, rng=np.random.default_rng(0), max_users=4
        ).decode_window(samples, n_data, len(PAYLOAD))
        assert cascade.users == full.users
        assert cascade.crc_ok == full.crc_ok
        assert cascade.sync_retries == full.sync_retries

    def test_escalation_increments_reason_counter(self):
        samples = _collided_window(PARAMS, seed=6)
        instruments = _Recorder()
        build_pipeline(
            "cascade", PARAMS, rng=np.random.default_rng(0), max_users=4
        ).decode_window(samples, _n_data(PARAMS), len(PAYLOAD), instruments)
        assert instruments.counts["decode.escalated"] == 1
        assert instruments.counts[f"decode.escalated.{REASON_COLLIDED}"] == 1
        # The full pipeline ran, so its attempt counter moved too.
        assert instruments.counts["decode.attempts"] >= 1
        assert "decode.tier0.ok" not in instruments.counts

    def test_crc_failure_falls_back_to_full(self):
        # Hamming(8,4) + interleaving absorbs 2 corrupted symbols; 3
        # break the CRC, which must bounce the window to the full path.
        frame = LoRaFramer(PARAMS).encode(PAYLOAD)
        corrupted = frame.symbols.copy()
        corrupted[:3] = (corrupted[:3] + 41) % PARAMS.chips_per_symbol
        samples, _ = _frame_in_window(PARAMS, seed=7, symbols=corrupted)
        result = build_pipeline(
            "cascade", PARAMS, rng=np.random.default_rng(0)
        ).decode_window(samples, _n_data(PARAMS), len(PAYLOAD))
        assert result.escalation_reason == REASON_CRC_FAIL
        assert result.tier == TIER_FULL

    def test_short_window_escalates_truncated(self):
        samples, _ = _frame_in_window(PARAMS, seed=8)
        n = PARAMS.samples_per_symbol
        # Cut the capture off mid-frame: Tier 0 runs out of data symbols.
        truncated = samples[: (PARAMS.preamble_len + 4) * n]
        result = build_pipeline(
            "cascade", PARAMS, rng=np.random.default_rng(0)
        ).decode_window(truncated, _n_data(PARAMS), len(PAYLOAD))
        assert result.escalation_reason == REASON_TRUNCATED


class TestFastTier:
    def test_clean_window_decodes_without_escalation_target(self):
        samples, _ = _frame_in_window(PARAMS, seed=9)
        result = build_pipeline("fast", PARAMS).decode_window(
            samples, _n_data(PARAMS), len(PAYLOAD)
        )
        assert result.tier == TIER0
        assert result.crc_ok
        assert [u.payload for u in result.users] == [PAYLOAD]

    def test_collision_records_reason_but_never_escalates(self):
        samples = _collided_window(PARAMS, seed=10)
        instruments = _Recorder()
        result = build_pipeline("fast", PARAMS).decode_window(
            samples, _n_data(PARAMS), len(PAYLOAD), instruments
        )
        assert result.tier == TIER0
        assert result.escalation_reason == REASON_COLLIDED
        assert not result.escalated
        assert result.users == ()
        assert "decode.escalated" not in instruments.counts

    def test_crc_failure_keeps_the_partial_result(self):
        frame = LoRaFramer(PARAMS).encode(PAYLOAD)
        corrupted = frame.symbols.copy()
        corrupted[:3] = (corrupted[:3] + 41) % PARAMS.chips_per_symbol
        samples, _ = _frame_in_window(PARAMS, seed=11, symbols=corrupted)
        result = build_pipeline("fast", PARAMS).decode_window(
            samples, _n_data(PARAMS), len(PAYLOAD)
        )
        assert result.tier == TIER0
        assert result.escalation_reason == REASON_CRC_FAIL
        assert len(result.users) == 1
        assert not result.crc_ok


class TestUserFrame:
    def test_frozen_value_semantics(self):
        a = UserFrame(offset_bins=1.5, payload=b"x", crc_ok=True)
        b = UserFrame(offset_bins=1.5, payload=b"x", crc_ok=True)
        assert a == b
        with pytest.raises(Exception):
            a.crc_ok = False
