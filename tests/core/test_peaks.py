"""Tests for leakage-aware peak detection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dechirp import oversampled_spectrum
from repro.core.peaks import Peak, find_peaks, glitch_envelope, peak_positions, sidelobe_envelope


def _tone(position, n=256, amplitude=1.0):
    return amplitude * np.exp(2j * np.pi * position * np.arange(n) / n)


def _noise(n=256, sigma=1.0, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.normal(0, sigma / np.sqrt(2), n) + 1j * rng.normal(0, sigma / np.sqrt(2), n))


class TestFindPeaks:
    def test_single_tone(self):
        spectrum = oversampled_spectrum(_tone(42.3, amplitude=10) + _noise(), 10)
        peaks = find_peaks(spectrum, 10)
        assert len(peaks) == 1
        assert peaks[0].position_bins == pytest.approx(42.3, abs=0.05)

    def test_two_tones_sorted_by_magnitude(self):
        signal = _tone(20.1, amplitude=10) + _tone(90.7, amplitude=20) + _noise()
        peaks = find_peaks(oversampled_spectrum(signal, 10), 10)
        assert len(peaks) == 2
        assert peaks[0].position_bins == pytest.approx(90.7, abs=0.05)
        assert peaks[1].position_bins == pytest.approx(20.1, abs=0.05)

    def test_sidelobes_rejected(self):
        # A strong fractional tone alone must yield exactly one peak.
        signal = _tone(50.5, amplitude=50) + _noise()
        peaks = find_peaks(oversampled_spectrum(signal, 10), 10)
        assert len(peaks) == 1

    def test_weak_tone_under_leakage_deferred(self):
        # A tone weaker than the strong tone's side-lobe envelope nearby is
        # (correctly) not reported -- SIC recovers it later.
        signal = _tone(50.5, amplitude=100) + _tone(52.4, amplitude=2) + _noise()
        peaks = find_peaks(oversampled_spectrum(signal, 10), 10)
        positions = peak_positions(peaks)
        assert not np.any(np.abs(positions - 52.4) < 0.3)

    def test_comparable_tone_near_strong_survives(self):
        signal = _tone(50.5, amplitude=30) + _tone(53.4, amplitude=25) + _noise()
        peaks = find_peaks(oversampled_spectrum(signal, 10), 10)
        positions = peak_positions(peaks)
        assert np.any(np.abs(positions - 53.4) < 0.2)

    def test_max_peaks_cap(self):
        signal = sum(_tone(20 * k + 0.3, amplitude=10) for k in range(1, 6)) + _noise()
        peaks = find_peaks(oversampled_spectrum(signal, 10), 10, max_peaks=3)
        assert len(peaks) == 3

    def test_pure_noise_few_detections(self):
        peaks = find_peaks(oversampled_spectrum(_noise(seed=3), 10), 10, threshold_snr=5.0)
        assert len(peaks) <= 2

    def test_empty_spectrum(self):
        assert find_peaks(np.zeros(0, dtype=complex), 10) == []

    @given(st.floats(min_value=1.0, max_value=254.0))
    @settings(max_examples=25, deadline=None)
    def test_fractional_position_accuracy(self, position):
        signal = _tone(position, amplitude=30) + _noise(seed=1)
        peaks = find_peaks(oversampled_spectrum(signal, 10), 10, max_peaks=1)
        assert len(peaks) == 1
        assert peaks[0].position_bins == pytest.approx(position, abs=0.06)

    def test_peak_snr_reported(self):
        signal = _tone(100.0, amplitude=20) + _noise()
        peaks = find_peaks(oversampled_spectrum(signal, 10), 10)
        assert peaks[0].snr > 10


class TestPeakDataclass:
    def test_fractional(self):
        peak = Peak(position_bins=42.37, amplitude=1 + 1j, snr=10.0)
        assert peak.fractional == pytest.approx(0.37)

    def test_magnitude(self):
        peak = Peak(position_bins=0.0, amplitude=3 + 4j, snr=1.0)
        assert peak.magnitude == pytest.approx(5.0)


class TestEnvelopes:
    def test_sidelobe_envelope_decays(self):
        assert sidelobe_envelope(1.0) > sidelobe_envelope(2.0) > sidelobe_envelope(10.0)

    def test_sidelobe_envelope_first_lobe_level(self):
        # First sinc side lobe is ~ -13.5 dB = 0.21 of the main lobe.
        assert sidelobe_envelope(1.5) == pytest.approx(0.212, abs=0.05)

    def test_glitch_envelope_capped_near_peak(self):
        near = glitch_envelope(0.1, 256, max_delay_samples=32)
        assert near == pytest.approx(2 * 32 / 256)

    def test_glitch_envelope_tail(self):
        far = glitch_envelope(20.0, 256, max_delay_samples=32)
        assert far == pytest.approx(2 / (np.pi * 20.0))
