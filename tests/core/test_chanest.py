"""Tests for least-squares channel estimation and window models."""

import numpy as np
import pytest

from repro.core.chanest import (
    data_column,
    estimate_channels,
    reconstruct_tones,
    solve_channels,
    tone_matrix,
)
from repro.core.dechirp import dechirp_windows
from repro.phy import LoRaParams
from tests.core.conftest import make_radio

PARAMS = LoRaParams(spreading_factor=8, preamble_len=8)
N = PARAMS.samples_per_symbol


class TestToneMatrix:
    def test_shape(self):
        e = tone_matrix(np.array([1.0, 2.5]), 64)
        assert e.shape == (64, 2)

    def test_columns_are_unit_tones(self):
        e = tone_matrix(np.array([5.0]), 256)
        expected = np.exp(2j * np.pi * 5.0 * np.arange(256) / 256)
        assert np.allclose(e[:, 0], expected)

    def test_delay_glitch_phase(self):
        e = tone_matrix(np.array([0.0]), 256, np.array([4.5]))
        # Head samples carry the (N/2 - delta) jump.
        jump = np.exp(2j * np.pi * (128 - 4.5))
        assert np.allclose(e[:4, 0], jump)
        assert np.allclose(e[5:, 0], 1.0)

    def test_delay_length_mismatch(self):
        with pytest.raises(ValueError, match="delays"):
            tone_matrix(np.array([0.0, 1.0]), 64, np.array([1.0]))


class TestEstimateChannels:
    def test_exact_on_synthetic_mixture(self):
        n = 256
        positions = np.array([10.3, 77.8])
        true_h = np.array([2.0 - 1.0j, 0.5 + 0.25j])
        signal = reconstruct_tones(positions, true_h, n)
        estimated = estimate_channels(signal, positions)
        assert np.allclose(estimated, true_h, atol=1e-9)

    def test_multi_window(self):
        n = 256
        positions = np.array([10.3])
        rows = np.stack(
            [
                reconstruct_tones(positions, np.array([h]), n)
                for h in (1 + 0j, 0 + 1j, -1 + 0j)
            ]
        )
        estimated = estimate_channels(rows, positions)
        assert estimated.shape == (3, 1)
        assert np.allclose(estimated[:, 0], [1 + 0j, 0 + 1j, -1 + 0j], atol=1e-9)

    def test_noise_robustness(self):
        rng = np.random.default_rng(0)
        n = 256
        positions = np.array([42.7])
        signal = reconstruct_tones(positions, np.array([5.0 + 0j]), n)
        noisy = signal + (rng.normal(size=n) + 1j * rng.normal(size=n)) / np.sqrt(2)
        estimated = estimate_channels(noisy, positions)
        assert estimated[0] == pytest.approx(5.0 + 0j, abs=0.3)


class TestDataColumn:
    def test_zero_delay_is_pure_tone(self):
        column = data_column(3.3, 0.0, 17, 200, N)
        expected = np.exp(2j * np.pi * (3.3 + 17) * np.arange(N) / N)
        assert np.allclose(column, expected)

    def test_matches_rendered_waveform(self):
        # The analytic data-window model must match the actual dechirped
        # window of a delayed, CFO-impaired transmission up to one complex
        # scale factor (the channel).
        rng = np.random.default_rng(1)
        cfo_bins, delay = 11.37, 6.4
        radio = make_radio(rng, cfo_bins, delay)
        symbols = np.array([133, 57, 201])
        waveform, state = radio.transmit_symbols(symbols)
        mu = state.aggregate_offset_bins(PARAMS) % PARAMS.chips_per_symbol
        start = (PARAMS.preamble_len + 1) * N  # second data window
        window = dechirp_windows(PARAMS, waveform, n_windows=1, start=start)[0]
        column = data_column(mu, delay, int(symbols[1]), int(symbols[0]), N)
        # Least-squares residual of the single-column fit should be ~zero.
        h = solve_channels(window, column[:, None])
        residual = window - column * h[0]
        assert np.linalg.norm(residual) / np.linalg.norm(window) < 1e-6

    def test_pure_tone_model_mismatches_delayed_window(self):
        # Without the glitch segment the fit has a visible floor -- this is
        # exactly why the near-far decode needs data_column.
        rng = np.random.default_rng(2)
        radio = make_radio(rng, 11.37, 6.4)
        symbols = np.array([133, 57, 201])
        waveform, state = radio.transmit_symbols(symbols)
        mu = state.aggregate_offset_bins(PARAMS) % PARAMS.chips_per_symbol
        start = (PARAMS.preamble_len + 1) * N
        window = dechirp_windows(PARAMS, waveform, n_windows=1, start=start)[0]
        pure = data_column(mu, 0.0, int(symbols[1]), 0, N)
        h = solve_channels(window, pure[:, None])
        residual = window - pure * h[0]
        assert np.linalg.norm(residual) / np.linalg.norm(window) > 1e-3


class TestSolveChannels:
    def test_multi_column(self):
        n = 128
        cols = np.stack(
            [
                np.exp(2j * np.pi * 3.0 * np.arange(n) / n),
                np.exp(2j * np.pi * 60.5 * np.arange(n) / n),
            ],
            axis=-1,
        )
        true_h = np.array([1.5 + 0j, -2.0 + 1j])
        signal = cols @ true_h
        assert np.allclose(solve_channels(signal, cols), true_h, atol=1e-9)
