"""Tests for below-noise preamble detection (Sec. 7.2)."""

import numpy as np
import pytest

from repro.core.dechirp import dechirp_windows
from repro.core.detection import (
    accumulate_preamble,
    detect_preamble,
    sliding_packet_search,
)
from tests.core.conftest import PARAMS, make_collision


class TestAccumulation:
    def test_reduces_noise_variance(self):
        rng = np.random.default_rng(0)
        windows = (rng.normal(size=(8, 256)) + 1j * rng.normal(size=(8, 256))) / np.sqrt(2)
        accumulated = accumulate_preamble(windows, oversample=4)
        single = np.abs(np.fft.fft(windows[0], 1024)) ** 2
        assert np.std(accumulated) < np.std(single)

    def test_preserves_peak_location(self):
        tone = np.exp(2j * np.pi * 42.5 * np.arange(256) / 256)
        windows = np.stack([tone * np.exp(1j * phi) for phi in (0.0, 1.0, 2.0)])
        accumulated = accumulate_preamble(windows, oversample=10)
        assert np.argmax(accumulated) / 10 == pytest.approx(42.5, abs=0.1)


class TestDetectPreamble:
    def test_detects_above_noise_peak(self):
        rng = np.random.default_rng(1)
        tone = 3.0 * np.exp(2j * np.pi * 99.4 * np.arange(256) / 256)
        windows = np.stack(
            [
                tone + (rng.normal(size=256) + 1j * rng.normal(size=256)) / np.sqrt(2)
                for _ in range(8)
            ]
        )
        result = detect_preamble(accumulate_preamble(windows, 10), 10)
        assert result.detected
        assert result.n_peaks >= 1
        assert result.peaks[0].position_bins == pytest.approx(99.4, abs=0.2)

    def test_no_false_positive_on_noise(self):
        rng = np.random.default_rng(2)
        windows = (rng.normal(size=(8, 256)) + 1j * rng.normal(size=(8, 256))) / np.sqrt(2)
        result = detect_preamble(accumulate_preamble(windows, 10), 10, n_windows=8)
        assert not result.detected

    def test_below_single_window_noise_detected_after_accumulation(self):
        # Per-window SNR so low the peak is invisible in one window but
        # emerges over the preamble (the Sec. 7.2 mechanism).
        rng = np.random.default_rng(3)
        amplitude = 0.35  # -9 dB per-sample
        tone = amplitude * np.exp(2j * np.pi * 10.6 * np.arange(256) / 256)
        windows = np.stack(
            [
                tone + (rng.normal(size=256) + 1j * rng.normal(size=256)) / np.sqrt(2)
                for _ in range(8)
            ]
        )
        result = detect_preamble(accumulate_preamble(windows, 10), 10)
        assert result.detected


class TestSlidingSearch:
    def test_finds_delayed_packet_start(self):
        rng = np.random.default_rng(4)
        packet, _ = make_collision(rng, [(25.3, 2.0, 8.0)], n_symbols=6)
        lead_windows = 3
        padded = np.concatenate(
            [
                (rng.normal(size=lead_windows * 256) + 1j * rng.normal(size=lead_windows * 256))
                / np.sqrt(2),
                packet.samples,
            ]
        )
        result = sliding_packet_search(PARAMS, padded)
        assert result.detected
        assert result.start_window == lead_windows

    def test_team_detection_below_noise(self):
        # 8 members each at -10 dB per-sample: detectable as a team.
        rng = np.random.default_rng(5)
        users = [(rng.uniform(0, 200), rng.uniform(0, 8), 0.32) for _ in range(8)]
        shared = rng.integers(0, 256, 6)
        packet, _ = make_collision(rng, users, symbols=[shared] * 8)
        result = sliding_packet_search(PARAMS, packet.samples)
        assert result.detected
        assert result.n_peaks >= 3

    def test_short_capture(self):
        result = sliding_packet_search(PARAMS, np.zeros(100, dtype=complex))
        assert not result.detected
