"""Tests for offset estimation: coarse, fine, delays, decomposition."""

import numpy as np
import pytest

from repro.core.dechirp import dechirp_windows
from repro.core.offsets import (
    UserEstimate,
    build_user_estimates,
    coarse_offsets,
    estimate_delays,
    estimate_offsets,
    golden_section_minimize,
    refine_offsets,
)
from repro.utils import circular_distance
from tests.core.conftest import PARAMS, make_collision

N_BINS = PARAMS.chips_per_symbol


def _preamble_windows(packet):
    return dechirp_windows(
        PARAMS,
        packet.samples,
        n_windows=PARAMS.preamble_len - 1,
        start=PARAMS.samples_per_symbol,
    )


class TestGoldenSection:
    def test_finds_parabola_minimum(self):
        x = golden_section_minimize(lambda v: (v - 3.21) ** 2, 0.0, 10.0, tol=1e-5)
        assert x == pytest.approx(3.21, abs=1e-4)

    def test_respects_bounds(self):
        x = golden_section_minimize(lambda v: -v, 0.0, 1.0)
        assert 0.0 <= x <= 1.0


class TestCoarseOffsets:
    def test_two_users_found(self):
        rng = np.random.default_rng(0)
        packet, _ = make_collision(rng, [(5.3, 0.0, 20.0), (70.8, 0.0, 15.0)])
        peaks = coarse_offsets(_preamble_windows(packet), 10)
        positions = sorted(p.position_bins for p in peaks)
        assert len(positions) == 2
        assert positions[0] == pytest.approx(5.3, abs=0.1)
        assert positions[1] == pytest.approx(70.8, abs=0.1)

    def test_max_users(self):
        rng = np.random.default_rng(1)
        packet, _ = make_collision(
            rng, [(5.3, 0.0, 20.0), (70.8, 0.0, 18.0), (150.1, 0.0, 16.0)]
        )
        peaks = coarse_offsets(_preamble_windows(packet), 10, max_users=2)
        assert len(peaks) == 2


class TestRefineOffsets:
    @pytest.mark.parametrize("method", ["coordinate", "nelder-mead"])
    def test_sub_bin_accuracy(self, method):
        rng = np.random.default_rng(2)
        truth = [12.37, 77.81]
        packet, _ = make_collision(rng, [(truth[0], 0.0, 20.0), (truth[1], 0.0, 15.0)])
        windows = _preamble_windows(packet)
        coarse = np.array([12.4, 77.8])
        refined = refine_offsets(windows, coarse, method=method, rng=rng)
        assert refined[0] == pytest.approx(truth[0], abs=0.02)
        assert refined[1] == pytest.approx(truth[1], abs=0.02)

    def test_methods_agree(self):
        rng = np.random.default_rng(3)
        packet, _ = make_collision(rng, [(30.6, 0.0, 10.0), (99.2, 0.0, 10.0)])
        windows = _preamble_windows(packet)
        coarse = np.array([30.5, 99.3])
        a = refine_offsets(windows, coarse, method="coordinate", rng=rng)
        b = refine_offsets(windows, coarse, method="nelder-mead", rng=rng)
        assert np.allclose(a, b, atol=0.03)

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="method"):
            refine_offsets(np.zeros((1, 8), dtype=complex), np.array([1.0]), method="sgd")

    def test_empty_positions(self):
        out = refine_offsets(np.zeros((1, 8), dtype=complex), np.array([]))
        assert out.size == 0


class TestEstimateDelays:
    def test_recovers_known_delays(self):
        rng = np.random.default_rng(4)
        packet, _ = make_collision(rng, [(10.2, 3.6, 20.0), (90.5, 7.2, 15.0)])
        windows = _preamble_windows(packet)
        truth_mu = [u.true_offset_bins(PARAMS) % N_BINS for u in packet.users]
        positions = refine_offsets(windows, np.array(truth_mu), rng=rng)
        delays = estimate_delays(windows, positions)
        assert delays[0] == pytest.approx(3.6, abs=0.3)
        assert delays[1] == pytest.approx(7.2, abs=0.3)

    def test_zero_delay_stays_zero(self):
        rng = np.random.default_rng(5)
        packet, _ = make_collision(rng, [(10.2, 0.0, 20.0)])
        windows = _preamble_windows(packet)
        delays = estimate_delays(windows, np.array([10.2]))
        assert delays[0] == pytest.approx(0.0, abs=0.3)


class TestEstimateOffsets:
    def test_full_pipeline_accuracy(self):
        rng = np.random.default_rng(6)
        users = [(8.43, 2.5, 20.0), (120.77, 6.1, 12.0)]
        packet, _ = make_collision(rng, users)
        estimates = estimate_offsets(PARAMS, packet.samples, rng=rng)
        assert len(estimates) == 2
        truths = sorted(u.true_offset_bins(PARAMS) % N_BINS for u in packet.users)
        found = sorted(e.position_bins for e in estimates)
        for t, f in zip(truths, found):
            assert circular_distance(t, f, period=N_BINS) < 0.05

    def test_cfo_decomposition(self):
        # cfo = mu + delay must hold for the estimates (Eqn. 5).
        rng = np.random.default_rng(7)
        packet, _ = make_collision(rng, [(15.31, 4.25, 25.0)])
        estimates = estimate_offsets(PARAMS, packet.samples, rng=rng)
        est = estimates[0]
        assert est.cfo_bins == pytest.approx(15.31, abs=0.3)
        assert est.delay_samples == pytest.approx(4.25, abs=0.3)

    def test_empty_capture(self):
        assert estimate_offsets(PARAMS, np.zeros(10, dtype=complex)) == []

    def test_noise_only_no_users(self):
        rng = np.random.default_rng(8)
        noise = rng.normal(size=8 * 256) + 1j * rng.normal(size=8 * 256)
        estimates = estimate_offsets(PARAMS, noise, threshold_snr=5.0, rng=rng)
        assert len(estimates) <= 1  # rare false alarm tolerated

    def test_snr_ordering(self):
        rng = np.random.default_rng(9)
        packet, _ = make_collision(rng, [(8.4, 0.0, 30.0), (120.7, 0.0, 5.0)])
        estimates = estimate_offsets(PARAMS, packet.samples, rng=rng)
        assert estimates[0].channel_magnitude > estimates[1].channel_magnitude


class TestUserEstimate:
    def test_fractional(self):
        est = UserEstimate(position_bins=42.37, channels=np.ones(3, dtype=complex))
        assert est.fractional == pytest.approx(0.37)

    def test_phase_slope_extrapolation(self):
        slope = 0.1
        channels = np.exp(2j * np.pi * slope * np.arange(7))
        est = build_user_estimates(
            # Synthetic: one user, channels rotating by `slope` cycles/window.
            np.stack(
                [
                    channels[m] * np.exp(2j * np.pi * 5.0 * np.arange(256) / 256)
                    for m in range(7)
                ]
            ),
            np.array([5.0]),
        )[0]
        assert est.phase_slope_cycles == pytest.approx(slope, abs=1e-6)
        predicted = est.channel_at_window(10)
        assert np.angle(predicted) == pytest.approx(
            np.angle(np.exp(2j * np.pi * slope * 10)), abs=1e-3
        )
