"""Shared fixtures for core-decoder tests."""

import numpy as np
import pytest

from repro.channel import CollisionChannel
from repro.hardware import LoRaRadio, OscillatorModel, TimingModel
from repro.phy import LoRaParams

PARAMS = LoRaParams(spreading_factor=8, bandwidth=125_000.0, preamble_len=8)


@pytest.fixture
def params():
    return PARAMS


def make_radio(rng, cfo_bins=0.0, delay_samples=0.0, node_id=0):
    """A radio with exactly specified impairments (in decoder units)."""
    return LoRaRadio(
        PARAMS,
        oscillator=OscillatorModel(PARAMS.bins_to_hz(cfo_bins)),
        timing=TimingModel(delay_samples / PARAMS.sample_rate),
        node_id=node_id,
        rng=rng,
    )


def make_collision(rng, users, n_symbols=12, noise_power=1.0, symbols=None):
    """Render a collision from (cfo_bins, delay_samples, amplitude) triples.

    Returns ``(packet, symbol_streams)``.
    """
    channel = CollisionChannel(PARAMS, noise_power=noise_power)
    transmissions = []
    streams = []
    for i, (cfo, delay, amp) in enumerate(users):
        radio = make_radio(rng, cfo, delay, node_id=i)
        stream = (
            symbols[i]
            if symbols is not None
            else rng.integers(0, PARAMS.chips_per_symbol, n_symbols)
        )
        streams.append(np.asarray(stream, dtype=int))
        transmissions.append((radio, streams[-1], complex(amp)))
    packet = channel.receive(transmissions, rng=rng)
    return packet, streams
