"""Tests for the clustering-based decode path (Sec. 6.2 pipeline)."""

import numpy as np
import pytest

from repro.core import ChoirDecoder
from repro.utils import circular_distance
from tests.core.conftest import PARAMS, make_collision

N_BINS = PARAMS.chips_per_symbol


def _accuracies(users, packet, streams):
    out = []
    for u, s in zip(packet.users, streams):
        truth = u.true_offset_bins(PARAMS) % N_BINS
        best = 0.0
        for du in users:
            if circular_distance(du.offset_bins, truth, period=N_BINS) < 0.5:
                best = max(best, float(np.mean(du.symbols == s)))
        out.append(best)
    return out


class TestClusteringDecode:
    def test_matches_sic_on_balanced_pair(self):
        rng = np.random.default_rng(0)
        packet, streams = make_collision(rng, [(12.4, 2.6, 20.0), (90.7, 7.2, 15.0)])
        decoder = ChoirDecoder(PARAMS, rng=np.random.default_rng(1))
        clustered = decoder.decode(packet.samples, streams[0].size, method="clustering")
        assert _accuracies(clustered, packet, streams) == [1.0, 1.0]

    def test_three_users(self):
        rng = np.random.default_rng(1)
        packet, streams = make_collision(
            rng, [(15.2, 1.0, 20.0), (60.7, 3.0, 15.0), (170.9, 7.0, 10.0)]
        )
        decoder = ChoirDecoder(PARAMS, rng=np.random.default_rng(1))
        clustered = decoder.decode(packet.samples, streams[0].size, method="clustering")
        assert min(_accuracies(clustered, packet, streams)) > 0.9

    def test_sic_stronger_under_near_far(self):
        # The documented trade-off: peak-detection clustering cannot see a
        # user buried under another's leakage; SIC can.
        rng = np.random.default_rng(2)
        packet, streams = make_collision(rng, [(50.45, 3.1, 60.0), (20.8, 6.4, 2.0)])
        sic = ChoirDecoder(PARAMS, rng=np.random.default_rng(1)).decode(
            packet.samples, streams[0].size, method="sic"
        )
        clustered = ChoirDecoder(PARAMS, rng=np.random.default_rng(1)).decode(
            packet.samples, streams[0].size, method="clustering"
        )
        sic_weak = _accuracies(sic, packet, streams)[1]
        clu_weak = _accuracies(clustered, packet, streams)[1]
        assert sic_weak >= clu_weak

    def test_unknown_method_rejected(self):
        rng = np.random.default_rng(3)
        packet, streams = make_collision(rng, [(12.4, 0.0, 20.0)])
        decoder = ChoirDecoder(PARAMS, rng=rng)
        with pytest.raises(ValueError, match="method"):
            decoder.decode(packet.samples, streams[0].size, method="magic")
