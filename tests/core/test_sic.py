"""Tests for phased successive interference cancellation."""

import numpy as np
import pytest

from repro.core.dechirp import dechirp_windows
from repro.core.sic import _merge_duplicates, phased_sic
from repro.utils import circular_distance
from tests.core.conftest import PARAMS, make_collision

N_BINS = PARAMS.chips_per_symbol


def _preamble_windows(packet):
    return dechirp_windows(
        PARAMS,
        packet.samples,
        n_windows=PARAMS.preamble_len - 1,
        start=PARAMS.samples_per_symbol,
    )


def _found(estimates, truth_mu, tol=0.3):
    return any(
        circular_distance(e.position_bins, truth_mu, period=N_BINS) < tol
        for e in estimates
    )


class TestPhasedSic:
    def test_equal_power_pair(self):
        rng = np.random.default_rng(0)
        packet, _ = make_collision(rng, [(10.4, 2.0, 10.0), (99.7, 5.0, 10.0)])
        estimates = phased_sic(_preamble_windows(packet), rng=rng)
        assert len(estimates) == 2

    def test_near_far_weak_user_recovered(self):
        # The defining test: a user 26 dB weaker, hidden under the strong
        # user's leakage at coarse detection, is exposed after phase-1
        # subtraction.
        rng = np.random.default_rng(1)
        packet, _ = make_collision(rng, [(50.45, 3.0, 60.0), (83.8, 6.0, 3.0)])
        estimates = phased_sic(_preamble_windows(packet), rng=rng)
        truths = [u.true_offset_bins(PARAMS) % N_BINS for u in packet.users]
        assert _found(estimates, truths[0])
        assert _found(estimates, truths[1])

    def test_no_ghosts_on_strong_pair(self):
        rng = np.random.default_rng(2)
        packet, _ = make_collision(rng, [(20.3, 4.0, 40.0), (150.8, 9.0, 30.0)])
        estimates = phased_sic(_preamble_windows(packet), rng=rng)
        assert len(estimates) == 2

    def test_five_users(self):
        rng = np.random.default_rng(3)
        users = [(15.2, 1.0, 25.0), (60.7, 3.0, 18.0), (110.4, 5.0, 12.0),
                 (170.9, 7.0, 8.0), (220.3, 9.0, 5.0)]
        packet, _ = make_collision(rng, users)
        estimates = phased_sic(_preamble_windows(packet), rng=rng)
        truths = [u.true_offset_bins(PARAMS) % N_BINS for u in packet.users]
        assert sum(_found(estimates, t) for t in truths) == 5

    def test_max_users_budget(self):
        rng = np.random.default_rng(4)
        packet, _ = make_collision(
            rng, [(15.2, 0.0, 25.0), (60.7, 0.0, 18.0), (110.4, 0.0, 12.0)]
        )
        estimates = phased_sic(_preamble_windows(packet), max_users=2, rng=rng)
        assert len(estimates) <= 2

    def test_noise_only(self):
        rng = np.random.default_rng(5)
        noise = (rng.normal(size=(7, 256)) + 1j * rng.normal(size=(7, 256))) / np.sqrt(2)
        estimates = phased_sic(noise, threshold_snr=5.0, rng=rng)
        assert len(estimates) <= 1

    def test_ghost_floor_filters_weak_artifacts(self):
        rng = np.random.default_rng(6)
        packet, _ = make_collision(rng, [(40.45, 12.0, 80.0)])
        estimates = phased_sic(_preamble_windows(packet), rng=rng)
        # A single strong user must not spawn extra "users".
        assert len(estimates) == 1

    def test_delay_estimates_propagated(self):
        rng = np.random.default_rng(7)
        packet, _ = make_collision(rng, [(30.3, 5.5, 30.0)])
        estimates = phased_sic(_preamble_windows(packet), rng=rng)
        assert estimates[0].delay_samples == pytest.approx(5.5, abs=0.3)


class TestMergeDuplicates:
    def test_collapses_near_positions(self):
        rng = np.random.default_rng(8)
        packet, _ = make_collision(rng, [(50.4, 0.0, 20.0)])
        windows = _preamble_windows(packet)
        positions = np.array([50.4, 50.5, 120.0])
        delays = np.zeros(3)
        merged_pos, merged_del = _merge_duplicates(positions, delays, windows, 0.75)
        assert merged_pos.size == 2
        assert np.any(np.abs(merged_pos - 120.0) < 1e-9)

    def test_single_position_untouched(self):
        windows = np.ones((2, 256), dtype=complex)
        pos, del_ = _merge_duplicates(np.array([5.0]), np.zeros(1), windows, 0.75)
        assert pos.size == 1


class TestClusterDeterminism:
    def test_clusters_emitted_in_deterministic_index_order(self):
        # Regression for the R010 finding: cluster discovery used to
        # seed components via set.pop() and scan candidates in set
        # iteration order.  Components must now come out seeded by their
        # smallest member, ascending, on every run.
        from repro.core.sic import _find_clusters

        positions = np.array([10.0, 11.0, 60.0, 61.0, 120.0])
        for _ in range(5):
            clusters = _find_clusters(positions, n_bins=128, radius=2.0)
            assert clusters == [[0, 1], [2, 3], [4]]
