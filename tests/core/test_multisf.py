"""Tests for multi-spreading-factor demultiplexing (Sec. 5.2, note 4)."""

import numpy as np
import pytest

from repro.channel.collider import receive_mixed_sf
from repro.core.multisf import (
    MultiSfDecoder,
    cross_sf_interference_penalty_db,
    reconstruct_user_waveform,
    subtract_branch,
)
from repro.hardware import LoRaRadio
from repro.phy import LoRaParams


def _mixed_capture(seed, sf_assignments, gain=12.0, n_symbols=12, decoder=None):
    rng = np.random.default_rng(seed)
    decoder = decoder or MultiSfDecoder(
        spreading_factors=tuple(sorted(set(sf_assignments))),
        rng=np.random.default_rng(1),
    )
    transmissions, truth = [], {}
    for i, sf in enumerate(sf_assignments):
        params = decoder.params_for(sf)
        radio = LoRaRadio(params, node_id=i, rng=rng)
        symbols = rng.integers(0, params.chips_per_symbol, n_symbols)
        truth[i] = (sf, symbols)
        transmissions.append((radio, symbols, gain + 0j))
    capture, users = receive_mixed_sf(transmissions, rng=rng)
    return decoder, capture, truth


def _branch_accuracies(results, truth):
    accs = []
    for branch in results:
        for du in branch.users:
            candidates = [
                float(np.mean(du.symbols == s))
                for _, (sf, s) in truth.items()
                if sf == branch.spreading_factor
            ]
            accs.append(max(candidates) if candidates else 0.0)
    return accs


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            MultiSfDecoder(spreading_factors=())

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="distinct"):
            MultiSfDecoder(spreading_factors=(7, 7))

    def test_mixed_rate_radios_rejected(self):
        rng = np.random.default_rng(0)
        r1 = LoRaRadio(LoRaParams(spreading_factor=7, bandwidth=125e3), rng=rng)
        r2 = LoRaRadio(LoRaParams(spreading_factor=7, bandwidth=250e3), rng=rng)
        with pytest.raises(ValueError, match="bandwidth"):
            receive_mixed_sf(
                [(r1, np.zeros(2, dtype=int), 1 + 0j), (r2, np.zeros(2, dtype=int), 1 + 0j)]
            )


class TestPaperExample:
    def test_five_sensors_sf_7_7_8_8_9(self):
        # The exact scenario of Sec. 5.2 note (4).
        decoder, capture, truth = _mixed_capture(5, [7, 7, 8, 8, 9])
        results = decoder.decode(capture, {7: 12, 8: 12, 9: 12}, cancel_across_sf=False)
        per_sf = {b.spreading_factor: b.n_users for b in results}
        assert per_sf == {7: 2, 8: 2, 9: 1}
        accs = _branch_accuracies(results, truth)
        assert np.mean(accs) > 0.7

    def test_cross_sf_cancellation_helps(self):
        decoder, capture, truth = _mixed_capture(0, [7, 7, 8, 8, 9])
        plain = decoder.decode(capture, {7: 12, 8: 12, 9: 12}, cancel_across_sf=False)
        cancelled = decoder.decode(capture, {7: 12, 8: 12, 9: 12}, cancel_across_sf=True)
        mean_plain = np.mean(_branch_accuracies(plain, truth))
        mean_cancelled = np.mean(_branch_accuracies(cancelled, truth))
        assert mean_cancelled >= mean_plain - 0.05

    def test_inactive_branch_empty(self):
        decoder, capture, truth = _mixed_capture(2, [7, 7])
        decoder9 = MultiSfDecoder(spreading_factors=(7, 9), rng=np.random.default_rng(1))
        # Rebuild capture against the (7, 9)-aware decoder's params.
        decoder9, capture, truth = _mixed_capture(2, [7, 7], decoder=decoder9)
        results = decoder9.decode(capture, {7: 12})
        per_sf = {b.spreading_factor: b.n_users for b in results}
        assert per_sf[7] == 2
        assert per_sf[9] == 0


class TestReconstruction:
    def test_reconstruction_cancels_clean_user(self):
        decoder, capture, truth = _mixed_capture(3, [9], gain=15.0)
        results = decoder.decode(capture, {9: 12})
        users = results[0].users
        assert len(users) == 1
        params = decoder.params_for(9)
        residual = subtract_branch(capture, params, users)
        before = float(np.mean(np.abs(capture) ** 2))
        after = float(np.mean(np.abs(residual) ** 2))
        assert after < before / 20.0  # > 13 dB of cancellation

    def test_unit_waveform_magnitude(self):
        decoder, capture, _ = _mixed_capture(4, [8], gain=10.0)
        user = decoder.decode(capture, {8: 12})[0].users[0]
        unit = reconstruct_user_waveform(decoder.params_for(8), user)
        active = unit[np.abs(unit) > 0]
        assert np.allclose(np.abs(active), 1.0, atol=1e-9)


class TestPenaltyModel:
    def test_penalty_small_for_lp_wan_ratios(self):
        assert cross_sf_interference_penalty_db(8, 9, other_power_ratio=10.0) < 0.5

    def test_penalty_grows_with_power(self):
        weak = cross_sf_interference_penalty_db(7, 8, other_power_ratio=1.0)
        strong = cross_sf_interference_penalty_db(7, 8, other_power_ratio=100.0)
        assert strong > weak

    def test_penalty_shrinks_with_sf(self):
        low_sf = cross_sf_interference_penalty_db(7, 9, other_power_ratio=50.0)
        high_sf = cross_sf_interference_penalty_db(10, 9, other_power_ratio=50.0)
        assert high_sf < low_sf
