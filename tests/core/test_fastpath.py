"""Tests for the Tier-0 fast path: sync, evidence, discriminator, decode.

The agreement class is the cascade's safety bedrock: on clean captures
the Tier-0 decoder must reproduce the full ChoirDecoder's symbol
decisions *exactly* across spreading factors and an SNR sweep --
otherwise "fast path" would quietly mean "different answers".
"""

import numpy as np
import pytest

from repro.channel.noise import awgn
from repro.core.decoder import ChoirDecoder
from repro.core.fastpath import (
    AMBIGUOUS,
    CLEAN,
    COLLIDED,
    NO_PREAMBLE,
    CascadeThresholds,
    FastPathDecoder,
    PreambleEvidence,
    _refine_parabolic,
)
from repro.hardware import LoRaRadio, OscillatorModel, TimingModel
from repro.phy.packet import LoRaFramer
from repro.phy.params import LoRaParams
from repro.utils import circular_distance

PARAMS = LoRaParams(spreading_factor=7)
THRESHOLDS = CascadeThresholds()


def _clean_capture(params, seed=0, snr_db=15.0, lead_symbols=2, payload=b"ab12"):
    """One single-user frame with board impairments, noise lead and tail."""
    rng = np.random.default_rng(seed)
    radio = LoRaRadio(params, node_id=0, rng=rng)
    waveform, state, symbols = radio.transmit_payload(
        payload, amplitude=10 ** (snr_db / 20)
    )
    n = params.samples_per_symbol
    capture = np.concatenate(
        [
            np.zeros(lead_symbols * n, dtype=complex),
            waveform,
            np.zeros(n, dtype=complex),
        ]
    )
    return awgn(capture, 1.0, rng=rng), state, symbols


def _collided_capture(params, seed=0, n_users=2, snr_db=15.0):
    """Fully overlapping multi-user frame with well-separated offsets."""
    rng = np.random.default_rng(seed)
    n = params.samples_per_symbol
    window = None
    for u in range(n_users):
        cfo_bins = 2.0 + u * (params.chips_per_symbol - 8.0) / n_users
        radio = LoRaRadio(
            params,
            oscillator=OscillatorModel(params.bins_to_hz(cfo_bins)),
            timing=TimingModel(rng.uniform(0.0, 8.0) / params.sample_rate),
            node_id=u,
            rng=rng,
        )
        waveform, _, _ = radio.transmit_payload(
            b"ab12", amplitude=10 ** (snr_db / 20)
        )
        if window is None:
            window = np.concatenate(
                [np.zeros(2 * n, dtype=complex), waveform, np.zeros(n, dtype=complex)]
            )
        else:
            window[2 * n : 2 * n + waveform.size] += waveform
    return awgn(window, 1.0, rng=rng)


class TestPacketStartEstimation:
    def test_energy_edge_lands_within_half_symbol(self):
        n = PARAMS.samples_per_symbol
        capture, _, _ = _clean_capture(PARAMS, seed=1, lead_symbols=2)
        start = FastPathDecoder(PARAMS).estimate_packet_start(capture)
        assert abs(start - 2 * n) <= n // 2

    def test_flat_noise_returns_near_zero(self):
        # Pure noise has no rising edge; the estimator may latch onto a
        # random moving-average fluctuation but must not report a start
        # deep inside the capture (that would eat preamble on real
        # packets with no lead).
        rng = np.random.default_rng(2)
        noise = awgn(np.zeros(4096, dtype=complex), 1.0, rng=rng)
        start = FastPathDecoder(PARAMS).estimate_packet_start(noise)
        assert start <= PARAMS.samples_per_symbol // 2

    def test_no_lead_returns_near_zero(self):
        capture, _, _ = _clean_capture(PARAMS, seed=3, lead_symbols=0)
        start = FastPathDecoder(PARAMS).estimate_packet_start(capture)
        assert start <= PARAMS.samples_per_symbol // 2


class TestDiscriminator:
    def test_clean_capture_classifies_clean(self):
        capture, _, _ = _clean_capture(PARAMS, seed=4)
        fast = FastPathDecoder(PARAMS)
        evidence = fast.analyze_preamble(
            capture, fast.estimate_packet_start(capture)
        )
        assert evidence.classify(THRESHOLDS) == CLEAN
        assert evidence.fractional_spread_bins < THRESHOLDS.ambiguous_spread_bins
        assert evidence.second_peak_ratio <= THRESHOLDS.collided_peak_ratio

    def test_two_user_collision_classifies_collided(self):
        capture = _collided_capture(PARAMS, seed=5, n_users=2)
        fast = FastPathDecoder(PARAMS)
        evidence = fast.analyze_preamble(
            capture, fast.estimate_packet_start(capture)
        )
        assert evidence.classify(THRESHOLDS) == COLLIDED

    def test_noise_only_never_classifies_clean(self):
        # On pure noise the accumulated argmax wanders window to window,
        # so whichever escalating verdict fires (no-preamble-peak when
        # the peak is weak, ambiguous/collided otherwise) the window must
        # leave Tier 0 -- CLEAN would hand garbage to the argmax decoder.
        rng = np.random.default_rng(6)
        n = PARAMS.samples_per_symbol
        noise = awgn(
            np.zeros((PARAMS.preamble_len + 4) * n, dtype=complex), 1.0, rng=rng
        )
        fast = FastPathDecoder(PARAMS)
        evidence = fast.analyze_preamble(noise, 0)
        assert evidence.classify(THRESHOLDS) != CLEAN

    def test_weak_peak_classifies_no_preamble(self):
        evidence = PreambleEvidence(
            start_sample=0,
            mu_bins=0.0,
            peak_snr=THRESHOLDS.min_peak_snr / 2.0,
            second_peak_ratio=0.0,
            fractional_spread_bins=0.0,
            n_windows=7,
        )
        assert evidence.classify(THRESHOLDS) == NO_PREAMBLE

    def test_truncated_preamble_classifies_no_preamble(self):
        evidence = PreambleEvidence(
            start_sample=0,
            mu_bins=0.0,
            peak_snr=50.0,
            second_peak_ratio=0.0,
            fractional_spread_bins=0.0,
            n_windows=1,
        )
        assert evidence.classify(THRESHOLDS) == NO_PREAMBLE

    def test_spread_alone_classifies_ambiguous(self):
        evidence = PreambleEvidence(
            start_sample=0,
            mu_bins=3.0,
            peak_snr=20.0,
            second_peak_ratio=0.0,
            fractional_spread_bins=0.5,
            n_windows=7,
        )
        assert evidence.classify(THRESHOLDS) == AMBIGUOUS

    def test_mu_estimate_matches_ground_truth(self):
        capture, state, _ = _clean_capture(PARAMS, seed=7)
        fast = FastPathDecoder(PARAMS)
        evidence = fast.analyze_preamble(
            capture, fast.estimate_packet_start(capture)
        )
        true_offset = state.aggregate_offset_bins(PARAMS) % PARAMS.chips_per_symbol
        # The energy-edge start absorbs the integer part; the fractional
        # part of mu must match the transmitter's combined CFO+TO shift.
        assert circular_distance(
            evidence.mu_bins % 1.0, true_offset % 1.0, period=1.0
        ) < 0.1


class TestTier0Decode:
    @pytest.mark.parametrize("sf", [7, 8])
    @pytest.mark.parametrize("snr_db", [10.0, 15.0, 20.0])
    def test_symbols_agree_with_choir_decoder(self, sf, snr_db):
        params = LoRaParams(spreading_factor=sf)
        capture, _, true_symbols = _clean_capture(
            params, seed=8, snr_db=snr_db, lead_symbols=0
        )
        fast = FastPathDecoder(params)
        evidence = fast.analyze_preamble(capture, 0)
        assert evidence.classify(THRESHOLDS) == CLEAN
        tier0 = fast.decode(capture, evidence, len(true_symbols))

        choir = ChoirDecoder(params, rng=np.random.default_rng(0))
        users = choir.decode(capture, len(true_symbols))
        assert len(users) >= 1
        # Same window, same verdict, symbol for symbol.
        assert np.array_equal(tier0.symbols, users[0].symbols)
        assert np.array_equal(tier0.symbols, true_symbols)

    def test_round_trip_through_framer(self):
        params = PARAMS
        payload = b"zx9\x00"
        capture, _, symbols = _clean_capture(params, seed=9, payload=payload)
        fast = FastPathDecoder(params)
        evidence = fast.analyze_preamble(
            capture, fast.estimate_packet_start(capture)
        )
        decoded = fast.decode(capture, evidence, len(symbols))
        frame = LoRaFramer(params).decode(decoded.symbols, len(payload))
        assert frame.crc_ok
        assert frame.payload == payload

    def test_estimate_carries_mu_and_channels(self):
        capture, _, symbols = _clean_capture(PARAMS, seed=10)
        fast = FastPathDecoder(PARAMS)
        evidence = fast.analyze_preamble(
            capture, fast.estimate_packet_start(capture)
        )
        decoded = fast.decode(capture, evidence, len(symbols))
        assert decoded.estimate.position_bins == pytest.approx(evidence.mu_bins)
        assert decoded.estimate.channels.size == PARAMS.preamble_len - 1
        # Channel magnitudes sit near the transmit amplitude, not noise.
        assert np.median(np.abs(decoded.estimate.channels)) > 1.0


class TestParabolicRefine:
    def test_flat_spectrum_returns_index(self):
        assert _refine_parabolic(np.ones(8), 3) == 3.0

    def test_peak_offset_recovers_direction(self):
        power = np.array([0.0, 1.0, 3.0, 2.9, 0.0])
        refined = _refine_parabolic(power, 2)
        assert 2.0 < refined < 3.0

    def test_wraps_circularly(self):
        power = np.array([2.9, 0.5, 0.0, 0.5, 3.0])
        refined = _refine_parabolic(power, 4)
        assert refined > 4.0  # leaning toward index 0 across the wrap


class TestThresholds:
    def test_defaults_are_calibrated_ordering(self):
        t = CascadeThresholds()
        assert 0.0 < t.ambiguous_spread_bins < 1.0
        assert 0.0 < t.collided_peak_ratio < 1.0
        assert t.min_peak_snr > 0.0
