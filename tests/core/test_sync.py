"""Tests for sample-level capture synchronization."""

import numpy as np
import pytest

from repro.core import ChoirDecoder
from repro.core.detection import align_to_window_grid
from tests.core.conftest import PARAMS, make_collision


def _shifted_capture(shift, seed=0):
    rng = np.random.default_rng(seed)
    packet, streams = make_collision(rng, [(12.4, 2.6, 15.0), (90.7, 7.2, 12.0)])
    lead = (rng.normal(size=shift) + 1j * rng.normal(size=shift)) / np.sqrt(2)
    return np.concatenate([lead, packet.samples]), packet, streams


class TestAlignToWindowGrid:
    @pytest.mark.parametrize("shift", [0, 50, 150, 256, 400])
    def test_start_close_to_true_lead(self, shift):
        shifted, _, _ = _shifted_capture(shift)
        start, score = align_to_window_grid(PARAMS, shifted)
        # Start must land shortly before the true preamble start so the
        # residual becomes a small positive per-user delay.
        assert shift - 40 <= start <= shift + 4
        assert score > 10.0

    def test_too_short_capture(self):
        start, score = align_to_window_grid(PARAMS, np.zeros(100, dtype=complex))
        assert start == 0 and score == 0.0


class TestDecoderSynchronize:
    @pytest.mark.parametrize("shift", [33, 256, 517])
    def test_shifted_capture_decodes(self, shift):
        shifted, packet, streams = _shifted_capture(shift)
        decoder = ChoirDecoder(PARAMS, rng=np.random.default_rng(1))
        aligned = decoder.synchronize(shifted)
        users = decoder.decode(aligned, streams[0].size)
        for stream in streams:
            best = max(
                (float(np.mean(du.symbols == stream)) for du in users), default=0.0
            )
            assert best == 1.0

    def test_aligned_capture_unchanged_result(self):
        shifted, packet, streams = _shifted_capture(0)
        decoder = ChoirDecoder(PARAMS, rng=np.random.default_rng(1))
        aligned = decoder.synchronize(shifted)
        users = decoder.decode(aligned, streams[0].size)
        assert len(users) == 2
