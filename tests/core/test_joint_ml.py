"""Tests for maximum-likelihood joint team decoding (Eqn. 6)."""

import numpy as np
import pytest

from repro.core.chanest import reconstruct_tones
from repro.core.joint_ml import TeamMember, joint_ml_decode, team_snr_gain_db


def _team_window(symbol, members, n=256, noise_sigma=1.0, rng=None):
    """Synthetic dechirped window: every member sends `symbol`."""
    rng = rng or np.random.default_rng(0)
    positions = np.array([(m.position_bins + symbol) % n for m in members])
    channels = np.array([m.channel for m in members])
    signal = reconstruct_tones(positions, channels, n)
    noise = (rng.normal(size=n) + 1j * rng.normal(size=n)) * noise_sigma / np.sqrt(2)
    return signal + noise


class TestJointMlDecode:
    def test_requires_members(self):
        with pytest.raises(ValueError, match="at least one"):
            joint_ml_decode(np.zeros(16, dtype=complex), [])

    @pytest.mark.parametrize("coherent", [True, False])
    def test_single_strong_member(self, coherent):
        member = TeamMember(position_bins=42.37, channel=5.0 + 0j)
        window = _team_window(100, [member])
        best, _ = joint_ml_decode(window, [member], coherent=coherent)
        assert best == 100

    @pytest.mark.parametrize("coherent", [True, False])
    def test_team_pools_below_noise_members(self, coherent):
        # Each member at amplitude 0.33 (-9.6 dB per sample): individually
        # marginal, jointly decodable.
        rng = np.random.default_rng(1)
        members = [
            TeamMember(
                position_bins=float(rng.uniform(0, 256)),
                channel=0.33 * np.exp(2j * np.pi * rng.uniform()),
            )
            for _ in range(10)
        ]
        correct = 0
        for trial in range(10):
            window = _team_window(57, members, rng=np.random.default_rng(trial + 10))
            best, _ = joint_ml_decode(window, members, coherent=coherent)
            correct += best == 57
        assert correct >= 8

    def test_single_weak_member_fails_where_team_succeeds(self):
        rng = np.random.default_rng(2)
        weak = TeamMember(position_bins=10.4, channel=0.12 + 0j)
        team = [
            TeamMember(position_bins=float(rng.uniform(0, 256)), channel=0.12 + 0j)
            for _ in range(12)
        ]
        solo_correct = 0
        team_correct = 0
        for trial in range(12):
            rng_t = np.random.default_rng(trial + 100)
            solo_window = _team_window(33, [weak], rng=rng_t)
            best_solo, _ = joint_ml_decode(solo_window, [weak], coherent=False)
            solo_correct += best_solo == 33
            rng_t2 = np.random.default_rng(trial + 200)
            team_window = _team_window(33, team, rng=rng_t2)
            best_team, _ = joint_ml_decode(team_window, team, coherent=False)
            team_correct += best_team == 33
        assert team_correct > solo_correct

    def test_coherent_uses_delay_phase(self):
        # With per-user delays, the coherent metric must still decode:
        # build the window from data_column-style models.
        from repro.core.chanest import data_column

        n = 256
        members = [
            TeamMember(position_bins=40.3, channel=1.0 + 0j, delay_samples=3.0),
            TeamMember(position_bins=150.8, channel=0.8 + 0.6j, delay_samples=7.0),
        ]
        symbol = 77
        window = np.zeros(n, dtype=complex)
        for m in members:
            # d-dependent phase: exp(-2j*pi*d*delta/N) times tone at mu+d.
            tone = np.exp(2j * np.pi * (m.position_bins + symbol) * np.arange(n) / n)
            phase = np.exp(-2j * np.pi * symbol * m.delay_samples / n)
            window += m.channel * phase * tone
        best, _ = joint_ml_decode(window, members, coherent=True)
        assert best == symbol

    def test_metric_shape(self):
        member = TeamMember(position_bins=5.5, channel=1.0 + 0j)
        window = _team_window(3, [member])
        _, metric = joint_ml_decode(window, [member])
        assert metric.shape == (256,)


class TestTeamSnrGain:
    def test_sums_linear_snrs(self):
        assert team_snr_gain_db(np.array([1.0, 1.0])) == pytest.approx(3.01, abs=0.01)

    def test_thirty_nodes_gain(self):
        gain = team_snr_gain_db(np.ones(30)) - team_snr_gain_db(np.ones(1))
        assert gain == pytest.approx(10 * np.log10(30), abs=1e-9)
