"""Tests for the reconstruction residual (Eqn. 3) and its convexity."""

import numpy as np
import pytest

from repro.core.chanest import reconstruct_tones
from repro.core.residual import residual_power, residual_surface


def _mixture(positions, channels, n=256, noise_sigma=0.0, seed=0):
    signal = reconstruct_tones(np.asarray(positions), np.asarray(channels), n)
    if noise_sigma > 0:
        rng = np.random.default_rng(seed)
        signal = signal + (
            rng.normal(0, noise_sigma / np.sqrt(2), n)
            + 1j * rng.normal(0, noise_sigma / np.sqrt(2), n)
        )
    return signal


class TestResidualPower:
    def test_zero_at_exact_offsets(self):
        signal = _mixture([12.4, 80.9], [1 + 1j, 2 - 1j])
        assert residual_power(signal, np.array([12.4, 80.9])) < 1e-18

    def test_positive_at_wrong_offsets(self):
        signal = _mixture([12.4, 80.9], [1 + 1j, 2 - 1j])
        wrong = residual_power(signal, np.array([12.9, 80.9]))
        assert wrong > 1.0

    def test_noise_floor(self):
        signal = _mixture([42.0], [5 + 0j], noise_sigma=1.0)
        residual = residual_power(signal, np.array([42.0]))
        # Residual ~ total noise energy = n * sigma^2.
        assert residual == pytest.approx(256.0, rel=0.4)

    def test_multi_window_sums(self):
        sig1 = _mixture([10.0], [1 + 0j], noise_sigma=1.0, seed=1)
        sig2 = _mixture([10.0], [1 + 0j], noise_sigma=1.0, seed=2)
        stacked = residual_power(np.stack([sig1, sig2]), np.array([10.0]))
        separate = residual_power(sig1, np.array([10.0])) + residual_power(
            sig2, np.array([10.0])
        )
        assert stacked == pytest.approx(separate, rel=1e-9)

    def test_monotone_near_truth(self):
        # Local convexity along one coordinate (the Fig. 4 property).
        signal = _mixture([30.4, 90.8], [3 + 0j, 2 + 1j], noise_sigma=0.1)
        truth = 30.4
        errors = [0.0, 0.1, 0.2, 0.3, 0.4]
        values = [
            residual_power(signal, np.array([truth + e, 90.8])) for e in errors
        ]
        assert all(values[i] < values[i + 1] for i in range(len(values) - 1))


class TestResidualSurface:
    def test_minimum_at_truth(self):
        signal = _mixture([20.3, 77.7], [2 + 0j, 1 + 1j], noise_sigma=0.05)
        g1, g2, surface = residual_surface(
            signal, np.array([20.3, 77.7]), span_bins=0.5, n_points=11
        )
        idx = np.unravel_index(np.argmin(surface), surface.shape)
        assert g1[idx[0]] == pytest.approx(20.3, abs=0.06)
        assert g2[idx[1]] == pytest.approx(77.7, abs=0.06)

    def test_needs_two_users(self):
        with pytest.raises(ValueError, match="two users"):
            residual_surface(np.zeros(16, dtype=complex), np.array([1.0]))

    def test_shape(self):
        signal = _mixture([20.3, 77.7], [1, 1])
        g1, g2, surface = residual_surface(
            signal, np.array([20.3, 77.7]), n_points=7
        )
        assert surface.shape == (7, 7)
        assert g1.size == 7 and g2.size == 7
