"""Tests for path-loss models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import FreeSpacePathLoss, UrbanPathLoss


class TestFreeSpace:
    def test_friis_at_1km_902mhz(self):
        loss = FreeSpacePathLoss(carrier_hz=902e6).loss_db(1000.0)
        # FSPL = 20log10(d) + 20log10(f) - 147.55 = 60 + 179.1 - 147.55
        assert loss == pytest.approx(91.6, abs=0.3)

    def test_monotone_increasing(self):
        model = FreeSpacePathLoss()
        distances = np.array([10.0, 100.0, 1000.0])
        losses = model.loss_db(distances)
        assert np.all(np.diff(losses) > 0)


class TestUrbanPathLoss:
    def test_reference_loss_at_reference_distance(self):
        model = UrbanPathLoss(reference_loss_db=31.5, reference_m=1.0)
        assert model.loss_db(1.0) == pytest.approx(31.5)

    def test_exponent_slope(self):
        model = UrbanPathLoss(exponent=3.5, shadowing_sigma_db=0.0)
        per_decade = model.loss_db(1000.0) - model.loss_db(100.0)
        assert per_decade == pytest.approx(35.0)

    @given(st.floats(min_value=40.0, max_value=180.0))
    @settings(max_examples=20, deadline=None)
    def test_distance_for_loss_inverts(self, loss_db):
        model = UrbanPathLoss(shadowing_sigma_db=0.0)
        d = model.distance_for_loss(loss_db)
        if d > model.reference_m:
            assert model.loss_db(d) == pytest.approx(loss_db, abs=1e-6)

    def test_shadowing_adds_spread(self):
        model = UrbanPathLoss(shadowing_sigma_db=8.0)
        rng = np.random.default_rng(0)
        losses = [model.loss_db(500.0, rng=rng) for _ in range(300)]
        assert np.std(losses) == pytest.approx(8.0, rel=0.2)

    def test_below_reference_clamped(self):
        model = UrbanPathLoss()
        assert model.loss_db(0.1) == model.loss_db(1.0)

    def test_array_input(self):
        model = UrbanPathLoss()
        losses = model.loss_db(np.array([100.0, 1000.0]))
        assert losses.shape == (2,)
