"""Tests for AWGN and noise-floor accounting."""

import numpy as np
import pytest

from repro.channel.noise import awgn, awgn_for_snr, noise_power_dbm, thermal_noise_power
from repro.utils import signal_power


class TestThermalNoise:
    def test_known_floor_125khz(self):
        # kTB at 290 K over 125 kHz is about -123 dBm; +6 dB NF -> -117 dBm.
        assert noise_power_dbm(125_000.0, 6.0) == pytest.approx(-117.1, abs=0.3)

    def test_scales_with_bandwidth(self):
        assert noise_power_dbm(500e3) - noise_power_dbm(125e3) == pytest.approx(
            6.02, abs=0.05
        )

    def test_thermal_noise_positive(self):
        assert thermal_noise_power(125e3) > 0


class TestAwgn:
    def test_noise_power_measured(self):
        rng = np.random.default_rng(0)
        noisy = awgn(np.zeros(50_000, dtype=complex), 2.0, rng=rng)
        assert signal_power(noisy) == pytest.approx(2.0, rel=0.05)

    def test_preserves_signal_mean(self):
        rng = np.random.default_rng(1)
        signal = np.full(20_000, 3.0 + 0j)
        noisy = awgn(signal, 1.0, rng=rng)
        assert np.mean(noisy).real == pytest.approx(3.0, abs=0.05)

    def test_awgn_for_snr(self):
        rng = np.random.default_rng(2)
        tone = np.exp(2j * np.pi * 0.05 * np.arange(50_000))
        noisy = awgn_for_snr(tone, 10.0, rng=rng)
        noise = noisy - tone
        measured_snr = 10 * np.log10(signal_power(tone) / signal_power(noise))
        assert measured_snr == pytest.approx(10.0, abs=0.3)

    def test_awgn_for_snr_explicit_power(self):
        rng = np.random.default_rng(3)
        x = np.zeros(50_000, dtype=complex)
        noisy = awgn_for_snr(x, 0.0, signal_power=4.0, rng=rng)
        assert signal_power(noisy) == pytest.approx(4.0, rel=0.05)

    def test_reproducible_with_seed(self):
        a = awgn(np.zeros(16, dtype=complex), 1.0, rng=np.random.default_rng(9))
        b = awgn(np.zeros(16, dtype=complex), 1.0, rng=np.random.default_rng(9))
        assert np.array_equal(a, b)
