"""Tests for flat fading."""

import numpy as np
import pytest

from repro.channel import FlatFadingChannel


class TestFlatFading:
    def test_rayleigh_unit_mean_power(self):
        channel = FlatFadingChannel()
        gains = channel.sample_gains(20_000, rng=np.random.default_rng(0))
        assert np.mean(np.abs(gains) ** 2) == pytest.approx(1.0, rel=0.05)

    def test_rician_unit_mean_power(self):
        channel = FlatFadingChannel(rician_k_db=6.0)
        gains = channel.sample_gains(20_000, rng=np.random.default_rng(1))
        assert np.mean(np.abs(gains) ** 2) == pytest.approx(1.0, rel=0.05)

    def test_high_k_is_nearly_deterministic(self):
        channel = FlatFadingChannel(rician_k_db=40.0)
        gains = channel.sample_gains(2000, rng=np.random.default_rng(2))
        assert np.std(np.abs(gains)) < 0.05

    def test_rayleigh_magnitude_distribution(self):
        # Rayleigh magnitude: P(|h| < median) = 0.5 at median = sqrt(ln 2).
        channel = FlatFadingChannel()
        gains = channel.sample_gains(20_000, rng=np.random.default_rng(3))
        median = np.median(np.abs(gains))
        assert median == pytest.approx(np.sqrt(np.log(2)), rel=0.05)

    def test_reproducible(self):
        channel = FlatFadingChannel()
        a = channel.sample_gain(np.random.default_rng(5))
        b = channel.sample_gain(np.random.default_rng(5))
        assert a == b
