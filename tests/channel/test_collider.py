"""Tests for the collision channel."""

import numpy as np
import pytest

from repro.channel import CollisionChannel
from repro.hardware import AdcModel, LoRaRadio, OscillatorModel, TimingModel
from repro.phy import LoRaParams
from repro.utils import signal_power

PARAMS = LoRaParams(spreading_factor=8, preamble_len=8)


def _radio(rng, cfo_bins=0.0, delay=0.0):
    return LoRaRadio(
        PARAMS,
        oscillator=OscillatorModel(PARAMS.bins_to_hz(cfo_bins)),
        timing=TimingModel(delay / PARAMS.sample_rate),
        rng=rng,
    )


class TestCollisionChannel:
    def test_requires_transmissions(self):
        channel = CollisionChannel(PARAMS)
        with pytest.raises(ValueError, match="at least one"):
            channel.receive([], rng=0)

    def test_ground_truth_recorded(self):
        rng = np.random.default_rng(0)
        radios = [_radio(rng, 3.0, 1.0), _radio(rng, 40.5, 2.0)]
        channel = CollisionChannel(PARAMS, noise_power=1.0)
        syms = [rng.integers(0, 256, 4) for _ in radios]
        packet = channel.receive(
            [(r, s, 5 + 0j) for r, s in zip(radios, syms)], rng=rng
        )
        assert packet.n_users == 2
        for user, s in zip(packet.users, syms):
            assert np.array_equal(user.symbols, s)
            assert user.gain == 5 + 0j

    def test_superposition_is_linear(self):
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        channel = CollisionChannel(PARAMS, noise_power=1e-12)
        r1 = _radio(rng_a, 3.0)
        r2 = _radio(rng_a, 9.0)
        both = channel.receive(
            [(r1, np.zeros(2, dtype=int), 1 + 0j), (r2, np.zeros(2, dtype=int), 1 + 0j)],
            rng=np.random.default_rng(0),
        )
        r1b = _radio(rng_b, 3.0)
        r2b = _radio(rng_b, 9.0)
        alone1 = channel.receive([(r1b, np.zeros(2, dtype=int), 1 + 0j)], rng=np.random.default_rng(1))
        alone2 = channel.receive([(r2b, np.zeros(2, dtype=int), 1 + 0j)], rng=np.random.default_rng(2))
        n = min(both.samples.size, alone1.samples.size, alone2.samples.size)
        recombined = alone1.samples[:n] + alone2.samples[:n]
        assert np.allclose(both.samples[:n], recombined, atol=1e-5)

    def test_noise_floor_power(self):
        rng = np.random.default_rng(1)
        channel = CollisionChannel(PARAMS, noise_power=2.0)
        radio = _radio(rng)
        packet = channel.receive(
            [(radio, np.zeros(1, dtype=int), 1e-6 + 0j)], rng=rng, extra_noise_symbols=8
        )
        tail = packet.samples[-4 * PARAMS.samples_per_symbol :]
        assert signal_power(tail) == pytest.approx(2.0, rel=0.15)

    def test_adc_applied(self):
        rng = np.random.default_rng(2)
        adc = AdcModel(bits=6, full_scale=4.0)
        channel = CollisionChannel(PARAMS, noise_power=0.1, adc=adc)
        radio = _radio(rng)
        packet = channel.receive([(radio, np.zeros(1, dtype=int), 1 + 0j)], rng=rng)
        # All sample components must sit on the quantizer grid.
        codes = (packet.samples.real / adc.step) - 0.5
        assert np.allclose(codes, np.round(codes), atol=1e-9)

    def test_extra_noise_padding_length(self):
        rng = np.random.default_rng(3)
        channel = CollisionChannel(PARAMS, noise_power=1.0)
        radio = _radio(rng)
        packet = channel.receive(
            [(radio, np.zeros(2, dtype=int), 1 + 0j)], rng=rng, extra_noise_symbols=3
        )
        min_len = (PARAMS.preamble_len + 2 + 3) * PARAMS.samples_per_symbol
        assert packet.samples.size >= min_len

    def test_true_offset_bins_accessor(self):
        rng = np.random.default_rng(4)
        radio = _radio(rng, cfo_bins=10.5, delay=2.0)
        channel = CollisionChannel(PARAMS, noise_power=1.0)
        packet = channel.receive([(radio, np.zeros(1, dtype=int), 1 + 0j)], rng=rng)
        assert packet.users[0].true_offset_bins(PARAMS) == pytest.approx(8.5)
