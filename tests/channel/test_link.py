"""Tests for the link budget and distance->SNR model."""

import numpy as np
import pytest

from repro.channel import FlatFadingChannel, LinkBudget, LinkModel, UrbanPathLoss


class TestLinkBudget:
    def test_noise_floor(self):
        budget = LinkBudget()
        assert budget.noise_floor_dbm == pytest.approx(-117.1, abs=0.3)

    def test_rx_power_includes_all_terms(self):
        budget = LinkBudget(
            tx_power_dbm=14.0,
            tx_antenna_gain_dbi=2.0,
            rx_antenna_gain_dbi=3.0,
            penetration_loss_db=10.0,
        )
        assert budget.rx_power_dbm(100.0) == pytest.approx(14 + 2 + 3 - 10 - 100)

    def test_snr_consistency(self):
        budget = LinkBudget()
        assert budget.snr_db(120.0) == pytest.approx(
            budget.rx_power_dbm(120.0) - budget.noise_floor_dbm
        )


class TestLinkModel:
    def test_snr_decreases_with_distance(self):
        link = LinkModel()
        snrs = [link.mean_snr_db(d) for d in (100.0, 500.0, 2000.0)]
        assert snrs[0] > snrs[1] > snrs[2]

    def test_range_for_snr_inverts_mean_snr(self):
        link = LinkModel()
        target = -20.0
        d = link.range_for_snr(target)
        assert link.mean_snr_db(d) == pytest.approx(target, abs=0.01)

    def test_single_node_range_calibration(self):
        # The headline calibration: SF12 floor (-25 dB) reached at ~1 km.
        link = LinkModel()
        assert link.range_for_snr(-25.0) == pytest.approx(1000.0, rel=0.05)

    def test_team_range_gain_matches_exponent(self):
        # 30x pooled power buys 30**(1/3.5) = 2.64x distance.
        link = LinkModel()
        single = link.range_for_snr(-25.0)
        team = link.range_for_snr(-25.0 - 10 * np.log10(30))
        assert team / single == pytest.approx(30 ** (1 / 3.5), rel=1e-3)

    def test_packet_gain_power_tracks_snr(self):
        link = LinkModel(
            pathloss=UrbanPathLoss(shadowing_sigma_db=0.0),
            fading=FlatFadingChannel(rician_k_db=40.0),
        )
        rng = np.random.default_rng(0)
        gains = [link.packet_gain(300.0, rng=rng) for _ in range(200)]
        mean_power_db = 10 * np.log10(np.mean(np.abs(gains) ** 2))
        assert mean_power_db == pytest.approx(link.mean_snr_db(300.0), abs=0.5)

    def test_packet_gain_fading_spread(self):
        link = LinkModel(pathloss=UrbanPathLoss(shadowing_sigma_db=0.0))
        rng = np.random.default_rng(1)
        gains = np.array([link.packet_gain(300.0, rng=rng) for _ in range(2000)])
        # Rayleigh fading: substantial magnitude spread.
        assert np.std(np.abs(gains)) / np.mean(np.abs(gains)) > 0.3
