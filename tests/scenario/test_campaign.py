"""Campaign runner: scoring, curve serialization, the ordering gate."""

import json

import pytest

from repro.scenario import (
    CapacityCurve,
    ScenarioSpec,
    SweepPoint,
    VariantResult,
    delivered_count,
    run_campaign,
    run_point,
)
from repro.scenario.spec import GeometrySpec, PlanSpec, SweepSpec, TrafficSpec


def tiny_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="campaign-test",
        geometry=GeometrySpec(layout="fixed-snr", snr_db=15.0),
        traffic=TrafficSpec(period_s=3.0, payload_len=8, spreading_factors=(7,)),
        plan=PlanSpec(n_channels=2),
        sweep=SweepSpec(node_counts=(4, 8), duration_s=1.5, seed=11),
    )


def variant(name: str, offered: int, delivered: int) -> VariantResult:
    return VariantResult(
        variant=name,
        packets_offered=offered,
        packets_decoded=delivered,
        packets_delivered=delivered,
        crc_failures=0,
        wall_s=1.0,
        stream_s=1.0,
    )


def point(n: int, choir_rate: float, base_rate: float) -> SweepPoint:
    offered = 100
    return SweepPoint(
        n_nodes=n,
        duration_s=10.0,
        offered_load_erlangs=0.1,
        choir=variant("choir", offered, int(round(choir_rate * offered))),
        baseline=variant("baseline", offered, int(round(base_rate * offered))),
        source_active_peak=4,
    )


class TestDeliveredCount:
    def test_exact_match(self):
        assert delivered_count(["aa", "bb"], ["bb", "aa"]) == 2

    def test_duplicate_decodes_do_not_inflate(self):
        assert delivered_count(["aa"], ["aa", "aa", "aa"]) == 1

    def test_duplicate_transmissions_each_need_a_decode(self):
        assert delivered_count(["aa", "aa"], ["aa"]) == 1
        assert delivered_count(["aa", "aa"], ["aa", "aa"]) == 2

    def test_misdecodes_do_not_count(self):
        assert delivered_count(["aa"], ["ff"]) == 0


class TestOrderingGate:
    def test_clean_curve_has_no_violations(self):
        curve = CapacityCurve(
            scenario=tiny_spec(),
            points=(point(50, 1.0, 1.0), point(800, 0.8, 0.6)),
        )
        assert curve.ordering_violations(strict_above=200) == []

    def test_choir_below_baseline_flagged_anywhere(self):
        curve = CapacityCurve(
            scenario=tiny_spec(), points=(point(50, 0.9, 1.0),)
        )
        problems = curve.ordering_violations(strict_above=200)
        assert len(problems) == 1
        assert "n=50" in problems[0]

    def test_tie_allowed_below_threshold_not_above(self):
        curve = CapacityCurve(
            scenario=tiny_spec(),
            points=(point(50, 1.0, 1.0), point(400, 0.7, 0.7)),
        )
        problems = curve.ordering_violations(strict_above=200)
        assert len(problems) == 1
        assert "n=400" in problems[0]
        assert "strictly" in problems[0]


class TestCurveSerialization:
    def test_json_round_trips_through_loads(self):
        curve = CapacityCurve(
            scenario=tiny_spec(), points=(point(10, 1.0, 0.9),)
        )
        data = json.loads(curve.to_json())
        assert data["scenario"]["name"] == "campaign-test"
        assert data["points"][0]["choir"]["delivery_rate"] == 1.0
        assert data["points"][0]["capacity_gain"] == pytest.approx(1.0 / 0.9)

    def test_csv_has_header_and_one_row_per_point(self):
        curve = CapacityCurve(
            scenario=tiny_spec(),
            points=(point(10, 1.0, 0.9), point(20, 0.9, 0.8)),
        )
        lines = curve.to_csv().strip().splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("n_nodes,")
        assert lines[1].startswith("10,")
        assert lines[2].startswith("20,")

    def test_chart_renders_every_point(self):
        curve = CapacityCurve(
            scenario=tiny_spec(), points=(point(10, 1.0, 0.5),)
        )
        chart = curve.chart()
        assert "campaign-test" in chart
        assert "10" in chart


class TestEndToEnd:
    def test_small_sweep_runs_and_scores(self):
        spec = tiny_spec()
        curve = run_campaign(spec)
        assert [p.n_nodes for p in curve.points] == [4, 8]
        for p in curve.points:
            assert p.choir.packets_offered == p.baseline.packets_offered > 0
            assert 0.0 <= p.choir.delivery_rate <= 1.0
            assert 0.0 <= p.baseline.delivery_rate <= 1.0
            assert p.source_active_peak >= 1
            assert p.offered_load_erlangs > 0

    def test_point_overrides_and_progress_hook(self):
        spec = tiny_spec()
        seen = []
        curve = run_campaign(
            spec,
            node_counts=[3],
            duration_s=1.0,
            seed=99,
            on_point=seen.append,
        )
        assert len(curve.points) == 1
        assert curve.points[0].n_nodes == 3
        assert curve.points[0].duration_s == 1.0
        assert seen == [curve.points[0]]

    def test_variants_see_identical_offered_air(self):
        spec = tiny_spec()
        p = run_point(spec, 6, duration_s=1.5)
        assert p.choir.packets_offered == p.baseline.packets_offered
