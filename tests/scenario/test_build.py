"""Scenario -> live objects: geometry, population, byte-identical runs."""

import json

import numpy as np
import pytest

from repro.channel.link import LinkBudget
from repro.channel.pathloss import UrbanPathLoss
from repro.gateway import ShardedGateway, ShardedGatewayConfig, SyntheticTrafficSource
from repro.mac.simulator import NodeConfig
from repro.phy.params import ChannelPlan
from repro.scenario import (
    ScenarioError,
    ScenarioSpec,
    build_gateway,
    build_gateway_config,
    build_nodes,
    build_source,
    node_snrs,
    offered_load_erlangs,
    report_digest,
    source_seed,
)
from repro.scenario.spec import GeometrySpec, PlanSpec, SweepSpec, TrafficSpec


def small_spec(**overrides) -> ScenarioSpec:
    base = dict(
        name="build-test",
        geometry=GeometrySpec(layout="fixed-snr", snr_db=15.0),
        traffic=TrafficSpec(period_s=4.0, payload_len=8, spreading_factors=(7,)),
        plan=PlanSpec(n_channels=4),
        sweep=SweepSpec(node_counts=(8,), duration_s=2.0, seed=3),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestGeometry:
    def test_fixed_snr_is_constant(self):
        snrs = node_snrs(small_spec(), 16, seed=0)
        assert np.allclose(snrs, 15.0)

    def test_uniform_disc_matches_link_budget_bounds(self):
        geo = GeometrySpec(layout="uniform-disc", cell_radius_m=130.0,
                           min_distance_m=35.0)
        spec = small_spec(geometry=geo)
        snrs = node_snrs(spec, 500, seed=1)
        budget = LinkBudget(tx_power_dbm=geo.tx_power_dbm,
                            penetration_loss_db=geo.penetration_loss_db)
        pathloss = UrbanPathLoss(exponent=geo.path_exponent)
        best = budget.snr_db(float(pathloss.loss_db(geo.min_distance_m)))
        worst = budget.snr_db(float(pathloss.loss_db(geo.cell_radius_m)))
        assert np.all(snrs <= best + 1e-9)
        assert np.all(snrs >= worst - 1e-9)
        # area-uniform placement puts most nodes in the outer annulus
        assert float(np.median(snrs)) < (best + worst) / 2

    def test_geometry_deterministic_per_seed_and_count(self):
        spec = small_spec(geometry=GeometrySpec())
        a = node_snrs(spec, 64, seed=5)
        b = node_snrs(spec, 64, seed=5)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, node_snrs(spec, 64, seed=6))

    def test_shadowing_adds_spread(self):
        base = small_spec(geometry=GeometrySpec(shadowing_sigma_db=0.0))
        shadowed = small_spec(geometry=GeometrySpec(shadowing_sigma_db=6.0))
        assert float(np.std(node_snrs(shadowed, 200, seed=2))) > float(
            np.std(node_snrs(base, 200, seed=2))
        )


class TestPopulation:
    def test_round_robin_channels_cover_the_plan(self):
        nodes = build_nodes(small_spec(), 8, seed=0)
        assert [cfg.channel for cfg in nodes] == [0, 1, 2, 3, 0, 1, 2, 3]
        assert all(cfg.spreading_factor == 7 for cfg in nodes)
        assert all(cfg.period_s == 4.0 for cfg in nodes)

    def test_uniform_channel_policy_stays_in_plan(self):
        spec = small_spec(
            traffic=TrafficSpec(period_s=4.0, channel_policy="uniform")
        )
        nodes = build_nodes(spec, 100, seed=0)
        channels = {cfg.channel for cfg in nodes}
        assert channels <= set(range(4))
        assert len(channels) > 1

    def test_multi_sf_dealt_round_robin(self):
        spec = small_spec(
            traffic=TrafficSpec(period_s=4.0, spreading_factors=(7, 8))
        )
        nodes = build_nodes(spec, 4, seed=0)
        assert [cfg.spreading_factor for cfg in nodes] == [7, 8, 7, 8]

    def test_zero_nodes_rejected(self):
        with pytest.raises(ScenarioError):
            build_nodes(small_spec(), 0, seed=0)


class TestGatewayVariants:
    def test_choir_variant_uses_gateway_section(self):
        config = build_gateway_config(small_spec(), "choir")
        assert config.decode_tier == "cascade"
        assert config.max_users == 4
        assert config.plan.n_channels == 4

    def test_baseline_variant_overlays_decoder_only(self):
        spec = small_spec()
        choir = build_gateway_config(spec, "choir")
        base = build_gateway_config(spec, "baseline")
        assert base.decode_tier == "fast"
        assert base.max_users == 1
        # everything that is not the decoder is shared
        assert base.plan == choir.plan
        assert base.n_workers == choir.n_workers
        assert base.queue_capacity == choir.queue_capacity
        assert base.detection_pfa == choir.detection_pfa
        assert base.seed == choir.seed

    def test_unknown_variant_rejected(self):
        with pytest.raises(ScenarioError):
            build_gateway_config(small_spec(), "turbo")


class TestOfferedLoad:
    def test_periodic_load_scales_linearly_with_nodes(self):
        spec = small_spec()
        g1 = offered_load_erlangs(spec, 100)
        g2 = offered_load_erlangs(spec, 200)
        assert g2 == pytest.approx(2 * g1)

    def test_saturated_load_is_per_channel_airtime_bound(self):
        spec = small_spec(traffic=TrafficSpec(period_s=None))
        # each saturated node offers ~1 Erlang, split over 4 channels
        assert offered_load_erlangs(spec, 4) == pytest.approx(1.0)


class TestByteIdenticalReports:
    def test_scenario_run_equals_hand_constructed_run(self):
        """The loader adds nothing: a hand-built config must reproduce the
        scenario-built gateway report byte for byte (digest JSON)."""
        spec = small_spec()
        n_nodes = 8

        scenario_report = build_gateway(spec, "choir").run(
            build_source(spec, n_nodes)
        )

        # Hand-constructed equivalents of what the builders do, from the
        # documented construction rules alone.
        plan = ChannelPlan.eu868_style(4)
        nodes = [
            NodeConfig(
                node_id=i,
                snr_db=15.0,
                payload_bits=64,
                period_s=4.0,
                channel=i % 4,
                spreading_factor=7,
            )
            for i in range(n_nodes)
        ]
        source = SyntheticTrafficSource(
            params=plan.channel_params(7),
            nodes=nodes,
            duration_s=2.0,
            payload_len=8,
            chunk_samples=4096,
            plan=plan,
            rng=source_seed(spec, n_nodes, 3),
            materialize=False,
            max_active_nodes=1024,
        )
        hand_config = ShardedGatewayConfig(
            plan=plan,
            sf_set=(7,),
            payload_len=8,
            n_workers=2,
            executor="thread",
            queue_capacity=64,
            drop_policy="block",
            detection_pfa=1e-3,
            max_users=4,
            use_engine=True,
            decode_tier="cascade",
            seed=3,
        )
        hand_report = ShardedGateway(hand_config).run(source)

        scenario_bytes = json.dumps(
            report_digest(scenario_report), sort_keys=True
        ).encode()
        hand_bytes = json.dumps(
            report_digest(hand_report), sort_keys=True
        ).encode()
        assert scenario_bytes == hand_bytes
        # sanity: the runs actually decoded traffic
        assert scenario_report.packets_decoded > 0
