"""ScenarioSpec validation: typed errors with key context, strict keys."""

import pytest

from repro.scenario import ScenarioError, ScenarioSpec
from repro.scenario.spec import (
    BaselineSpec,
    GatewaySpec,
    GeometrySpec,
    PlanSpec,
    SweepSpec,
    TrafficSpec,
)


def minimal() -> dict:
    return {"name": "t"}


class TestRequiredAndTypes:
    def test_minimal_dict_parses_with_defaults(self):
        spec = ScenarioSpec.from_dict(minimal())
        assert spec.name == "t"
        assert spec.plan.n_channels == 8
        assert spec.gateway.decode_tier == "cascade"
        assert spec.baseline.max_users == 1

    def test_missing_name_is_an_error_with_key(self):
        with pytest.raises(ScenarioError) as err:
            ScenarioSpec.from_dict({})
        assert err.value.key == "name"
        assert "name" in str(err.value)

    def test_empty_name_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec.from_dict({"name": ""})

    def test_non_mapping_top_level_rejected(self):
        with pytest.raises(ScenarioError) as err:
            ScenarioSpec.from_dict(["not", "a", "mapping"])
        assert "mapping" in str(err.value)

    def test_wrong_type_carries_dotted_key(self):
        with pytest.raises(ScenarioError) as err:
            ScenarioSpec.from_dict(
                {"name": "t", "traffic": {"period_s": "often"}}
            )
        assert err.value.key == "traffic.period_s"
        assert "traffic.period_s" in str(err.value)

    def test_bool_is_not_an_int(self):
        with pytest.raises(ScenarioError) as err:
            ScenarioSpec.from_dict({"name": "t", "plan": {"n_channels": True}})
        assert err.value.key == "plan.n_channels"

    def test_node_counts_must_be_int_list(self):
        with pytest.raises(ScenarioError) as err:
            ScenarioSpec.from_dict(
                {"name": "t", "sweep": {"node_counts": [100, "many"]}}
            )
        assert err.value.key == "sweep.node_counts[1]"


class TestUnknownKeys:
    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ScenarioError) as err:
            ScenarioSpec.from_dict({"name": "t", "geomtry": {}})
        assert "geomtry" in str(err.value)

    def test_unknown_section_key_rejected_with_path(self):
        with pytest.raises(ScenarioError) as err:
            ScenarioSpec.from_dict(
                {"name": "t", "traffic": {"perriod_s": 20.0}}
            )
        assert err.value.key == "traffic.perriod_s"
        assert "unknown key" in str(err.value)


class TestDomainValidation:
    @pytest.mark.parametrize(
        "section,payload,key",
        [
            ("geometry", {"layout": "hexgrid"}, "geometry.layout"),
            ("geometry", {"cell_radius_m": -1.0}, "geometry.cell_radius_m"),
            (
                "geometry",
                {"cell_radius_m": 10.0, "min_distance_m": 20.0},
                "geometry.min_distance_m",
            ),
            ("traffic", {"period_s": 0.0}, "traffic.period_s"),
            ("traffic", {"payload_len": 0}, "traffic.payload_len"),
            ("traffic", {"spreading_factors": [5]}, "traffic.spreading_factors"),
            ("traffic", {"channel_policy": "hash"}, "traffic.channel_policy"),
            ("plan", {"region": "us915"}, "plan.region"),
            ("plan", {"n_channels": 0}, "plan.n_channels"),
            ("gateway", {"executor": "fork"}, "gateway.executor"),
            ("gateway", {"workers": 0}, "gateway.workers"),
            ("gateway", {"decode_tier": "turbo"}, "gateway.decode_tier"),
            ("gateway", {"detection_pfa": 1.5}, "gateway.detection_pfa"),
            ("gateway", {"max_users": 0}, "gateway.max_users"),
            ("baseline", {"decode_tier": "nope"}, "baseline.decode_tier"),
            ("sweep", {"node_counts": [0]}, "sweep.node_counts"),
            ("sweep", {"duration_s": -5.0}, "sweep.duration_s"),
            ("sweep", {"max_active_frames": 0}, "sweep.max_active_frames"),
        ],
    )
    def test_bad_value_names_its_key(self, section, payload, key):
        with pytest.raises(ScenarioError) as err:
            ScenarioSpec.from_dict({"name": "t", section: payload})
        assert err.value.key == key

    def test_saturated_traffic_allowed(self):
        spec = ScenarioSpec.from_dict(
            {"name": "t", "traffic": {"period_s": None}}
        )
        assert spec.traffic.period_s is None

    def test_unbounded_max_users_allowed(self):
        spec = ScenarioSpec.from_dict(
            {"name": "t", "gateway": {"max_users": None}}
        )
        assert spec.gateway.max_users is None


class TestRoundTrip:
    def test_default_spec_round_trips(self):
        spec = ScenarioSpec(name="rt")
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_customized_spec_round_trips(self):
        spec = ScenarioSpec(
            name="rt",
            description="custom",
            geometry=GeometrySpec(
                layout="fixed-snr", snr_db=9.0, shadowing_sigma_db=2.0
            ),
            traffic=TrafficSpec(
                period_s=None, payload_len=12, spreading_factors=(7, 8)
            ),
            plan=PlanSpec(n_channels=4),
            gateway=GatewaySpec(
                executor="serial", workers=1, decode_tier="full", max_users=None
            ),
            baseline=BaselineSpec(decode_tier="fast", max_users=1),
            sweep=SweepSpec(node_counts=(10, 20), duration_s=3.0, seed=7),
        )
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again == spec
        # and the dict projection itself is stable
        assert again.to_dict() == spec.to_dict()

    def test_round_trip_preserves_tuple_types(self):
        spec = ScenarioSpec.from_dict(
            {"name": "t", "traffic": {"spreading_factors": [8, 7]}}
        )
        assert spec.traffic.spreading_factors == (8, 7)
        assert isinstance(spec.sweep.node_counts, tuple)
