"""Loader behaviour: YAML and JSON files, file-context error stamping."""

import json

import pytest

from repro.scenario import ScenarioError, load_scenario, parse_scenario_text

YAML_OK = """
name: loader-test
traffic:
  period_s: 15.0
  spreading_factors: [7, 8]
plan:
  n_channels: 4
sweep:
  node_counts: [10, 40]
  duration_s: 2.0
"""


class TestHappyPath:
    def test_yaml_file_loads(self, tmp_path):
        path = tmp_path / "scn.yaml"
        path.write_text(YAML_OK)
        spec = load_scenario(path)
        assert spec.name == "loader-test"
        assert spec.traffic.spreading_factors == (7, 8)
        assert spec.plan.n_channels == 4

    def test_json_file_loads(self, tmp_path):
        path = tmp_path / "scn.json"
        path.write_text(json.dumps({"name": "from-json"}))
        assert load_scenario(path).name == "from-json"

    def test_yaml_and_json_agree(self, tmp_path):
        yaml_path = tmp_path / "a.yaml"
        yaml_path.write_text(YAML_OK)
        json_path = tmp_path / "a.json"
        json_path.write_text(json.dumps(load_scenario(yaml_path).to_dict()))
        assert load_scenario(json_path) == load_scenario(yaml_path)

    def test_parse_text_accepts_json_subset(self):
        spec = parse_scenario_text('{"name": "inline"}')
        assert spec.name == "inline"


class TestErrorContext:
    def test_missing_file_names_the_path(self, tmp_path):
        path = tmp_path / "nope.yaml"
        with pytest.raises(ScenarioError) as err:
            load_scenario(path)
        assert err.value.source == str(path)
        assert str(path) in str(err.value)

    def test_schema_error_carries_file_and_key(self, tmp_path):
        path = tmp_path / "bad.yaml"
        path.write_text("name: x\ntraffic:\n  period_s: sometimes\n")
        with pytest.raises(ScenarioError) as err:
            load_scenario(path)
        assert err.value.source == str(path)
        assert err.value.key == "traffic.period_s"
        assert str(path) in str(err.value)
        assert "traffic.period_s" in str(err.value)

    def test_unknown_key_error_carries_file(self, tmp_path):
        path = tmp_path / "typo.yaml"
        path.write_text("name: x\nsweeep:\n  duration_s: 1\n")
        with pytest.raises(ScenarioError) as err:
            load_scenario(path)
        assert err.value.source == str(path)
        assert "sweeep" in str(err.value)

    def test_yaml_syntax_error_is_a_scenario_error(self, tmp_path):
        path = tmp_path / "syntax.yaml"
        path.write_text("name: [unclosed\n")
        with pytest.raises(ScenarioError) as err:
            load_scenario(path)
        assert err.value.source == str(path)

    def test_empty_document_rejected(self, tmp_path):
        path = tmp_path / "empty.yaml"
        path.write_text("\n")
        with pytest.raises(ScenarioError) as err:
            load_scenario(path)
        assert "empty" in str(err.value)


class TestCommittedScenario:
    def test_repo_scenario_file_is_valid(self):
        spec = load_scenario("scenarios/eu868_urban.yaml")
        assert spec.name == "eu868-urban"
        assert spec.plan.n_channels == 8
        assert spec.gateway.decode_tier == "cascade"
        assert spec.baseline.max_users == 1
        assert spec.sweep.node_counts == (100, 300, 1000)
        assert spec.sweep.duration_s >= 60.0
