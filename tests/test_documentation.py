"""Documentation discipline: every public item carries a docstring.

Walks the installed ``repro`` package and asserts that every module, every
public class, and every public function/method has a non-trivial
docstring -- the deliverable contract for the library's public API.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # executing the CLI entry point is not a doc test
        yield importlib.import_module(info.name)


ALL_MODULES = list(_iter_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__ and len(module.__doc__.strip()) > 20, (
        f"{module.__name__} lacks a meaningful module docstring"
    )


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_items_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their definition site
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for method_name, method in vars(obj).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if not (method.__doc__ and method.__doc__.strip()):
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"{module.__name__} has undocumented public items: {undocumented}"
    )
