"""Cross-module integration tests: full pipelines over the public API."""

import numpy as np
import pytest

from repro import (
    ChoirDecoder,
    CollisionChannel,
    EnvironmentField,
    LoRaFramer,
    LoRaParams,
    LoRaRadio,
    CampusTestbed,
    SensorNode,
)
from repro.hardware import OscillatorModel, TimingModel
from repro.sensing import msb_overlap, splice_bits, merge_chunks
from repro.sensing.sensors import TEMP_RANGE_C, code_to_bits, bits_to_code, dequantize_reading
from repro.utils import circular_distance

PARAMS = LoRaParams(spreading_factor=8, preamble_len=8)


class TestPayloadCollisionPipeline:
    """Payload bytes -> radios -> collision -> Choir -> payload bytes."""

    def test_three_user_payload_recovery(self):
        rng = np.random.default_rng(0)
        framer = LoRaFramer(PARAMS, coding_rate=4)
        payloads = [b"sensor-00 t=21.50", b"sensor-01 t=22.10", b"sensor-02 t=20.90"]
        frames = [framer.encode(p) for p in payloads]
        n_sym = frames[0].n_symbols
        radios = [
            LoRaRadio(
                PARAMS,
                oscillator=OscillatorModel(PARAMS.bins_to_hz(mu)),
                timing=TimingModel(d / PARAMS.sample_rate),
                node_id=i,
                rng=rng,
            )
            for i, (mu, d) in enumerate([(20.3, 2.0), (110.8, 5.0), (200.4, 8.0)])
        ]
        channel = CollisionChannel(PARAMS, noise_power=1.0)
        packet = channel.receive(
            [(r, f.symbols, 12.0 + 0j) for r, f in zip(radios, frames)], rng=rng
        )
        decoder = ChoirDecoder(PARAMS, rng=rng)
        users = decoder.decode(packet.samples, n_sym)
        recovered = {
            du.decode_payload(framer, len(payloads[0])).payload
            for du in users
            if du.decode_payload(framer, len(payloads[0])).crc_ok
        }
        assert recovered == set(payloads)

    def test_testbed_driven_snrs(self):
        # Place real nodes on the campus testbed and use its link SNRs.
        rng = np.random.default_rng(1)
        testbed = CampusTestbed(rng_seed=1)
        placed = [testbed.place_at_distance(i, 150.0 + 150.0 * i) for i in range(3)]
        radios = [LoRaRadio(PARAMS, node_id=p.node_id, rng=rng) for p in placed]
        gains = [testbed.packet_gain(p, rng=rng) for p in placed]
        streams = [rng.integers(0, 256, 14) for _ in radios]
        channel = CollisionChannel(PARAMS, noise_power=1.0)
        packet = channel.receive(
            [(r, s, g) for r, s, g in zip(radios, streams, gains)], rng=rng
        )
        decoder = ChoirDecoder(PARAMS, rng=rng)
        users = decoder.decode(packet.samples, 14)
        # At least the users with healthy SNR decode correctly.
        healthy = [
            k
            for k, g in enumerate(gains)
            if 20 * np.log10(abs(g)) > 3.0
        ]
        matched = 0
        for k in healthy:
            truth_mu = packet.users[k].true_offset_bins(PARAMS) % 256
            for du in users:
                if circular_distance(du.offset_bins, truth_mu, period=256) < 0.5:
                    if np.mean(du.symbols == streams[k]) > 0.9:
                        matched += 1
                    break
        assert matched == len(healthy)


class TestSensorTeamPipeline:
    """Field -> sensors -> splicing -> team transmission -> recovery."""

    def test_msb_chunks_identical_across_team(self):
        rng = np.random.default_rng(2)
        field = EnvironmentField(rng_seed=2)
        sensors = [
            SensorNode(i, 0.5 + 0.02 * i, 0.5, floor=1, noise_c=0.05) for i in range(6)
        ]
        codes = [s.temperature_code(field, 12, rng) for s in sensors]
        overlap = msb_overlap(codes, 12)
        assert overlap >= 4
        chunk_sizes = [4, 4, 4]
        all_first_chunks = {
            tuple(splice_bits(code_to_bits(c, 12), chunk_sizes)[0]) for c in codes
        }
        assert len(all_first_chunks) == 1  # identical MSB chunk -> can team up

    def test_team_transmits_shared_chunk_below_noise(self):
        # The full Sec. 7 path: identical MSB chunk, concurrent transmission
        # below the single-user floor, joint decode, value reconstruction.
        rng = np.random.default_rng(3)
        field = EnvironmentField(rng_seed=3)
        sensors = [
            SensorNode(i, 0.45 + 0.02 * i, 0.52, floor=2, noise_c=0.05)
            for i in range(8)
        ]
        codes = [s.temperature_code(field, 12, rng) for s in sensors]
        chunk_sizes = [4, 4, 4]
        shared_chunk = splice_bits(code_to_bits(codes[0], 12), chunk_sizes)[0]
        # Map the 4-bit chunk onto one symbol (plus padding symbols).
        chunk_symbol = int(bits_to_code(shared_chunk))
        stream = np.array([chunk_symbol] * 6)
        channel = CollisionChannel(PARAMS, noise_power=1.0)
        transmissions = [
            (LoRaRadio(PARAMS, node_id=i, rng=rng), stream, 0.33 + 0j)
            for i in range(8)
        ]
        packet = channel.receive(transmissions, rng=rng)
        decoder = ChoirDecoder(PARAMS, rng=rng)
        result = decoder.decode_team(packet.samples, stream.size)
        assert result.detected
        recovered_symbol = int(np.median(result.symbols))
        assert recovered_symbol == chunk_symbol
        # Reconstruct the coarse reading.
        merged, n_known = merge_chunks(
            [code_to_bits(recovered_symbol, 4), None, None], chunk_sizes
        )
        assert n_known == 4
        coarse = dequantize_reading(bits_to_code(merged), TEMP_RANGE_C, 12)
        truth = dequantize_reading(codes[0], TEMP_RANGE_C, 12)
        # Coarse view within 1/2^4 of the range plus a margin.
        assert abs(coarse - truth) < (TEMP_RANGE_C[1] - TEMP_RANGE_C[0]) / 16
