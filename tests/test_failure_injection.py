"""Failure-injection tests: the receiver under hostile conditions.

The paper's deployment arguments lean on CSS being "robust to narrowband
interferers" (Sec. 3) and on the ADC bounding what any decoder can do
(Sec. 5.2).  These tests inject those failures -- CW jammers, wideband
bursts, clipping ADCs, truncated captures -- and check the receiver
degrades the way the paper says it should.
"""

import numpy as np
import pytest

from repro.channel import CollisionChannel
from repro.core import ChoirDecoder
from repro.hardware import AdcModel, LoRaRadio, OscillatorModel, TimingModel
from repro.phy import LoRaParams
from repro.utils import circular_distance

PARAMS = LoRaParams(spreading_factor=8, preamble_len=8)


def _two_user_packet(rng, gains=(15.0, 12.0), n_symbols=14, adc=None):
    channel = CollisionChannel(PARAMS, noise_power=1.0, adc=adc)
    radios = [
        LoRaRadio(
            PARAMS,
            oscillator=OscillatorModel(PARAMS.bins_to_hz(mu)),
            timing=TimingModel(d / PARAMS.sample_rate),
            node_id=i,
            rng=rng,
        )
        for i, (mu, d) in enumerate([(20.3, 2.0), (130.9, 5.0)])
    ]
    streams = [rng.integers(0, 256, n_symbols) for _ in radios]
    packet = channel.receive(
        [(r, s, g + 0j) for r, s, g in zip(radios, streams, gains)], rng=rng
    )
    return packet, streams


def _accuracies(users, packet, streams):
    out = []
    for u, s in zip(packet.users, streams):
        truth = u.true_offset_bins(PARAMS) % 256
        best = 0.0
        for du in users:
            if circular_distance(du.offset_bins, truth, period=256) < 0.5:
                best = max(best, float(np.mean(du.symbols == s)))
        out.append(best)
    return out


class TestNarrowbandJammer:
    def test_cw_tone_jammer_tolerated(self):
        # A continuous-wave jammer 10 dB above each user: dechirping smears
        # it across the band (the CSS robustness the paper invokes).
        rng = np.random.default_rng(0)
        packet, streams = _two_user_packet(rng)
        n = packet.samples.size
        jammer = 40.0 * np.exp(2j * np.pi * 0.173 * np.arange(n))
        decoder = ChoirDecoder(PARAMS, rng=rng)
        users = decoder.decode(packet.samples + jammer, streams[0].size)
        accs = _accuracies(users, packet, streams)
        assert min(accs) > 0.85


class TestBurstInterference:
    def test_short_wideband_burst(self):
        # A strong noise burst over ~1.5 data windows: the affected symbols
        # may be lost but the rest of the packet must survive.
        rng = np.random.default_rng(1)
        packet, streams = _two_user_packet(rng)
        corrupted = packet.samples.copy()
        start = (PARAMS.preamble_len + 4) * PARAMS.samples_per_symbol
        length = int(1.5 * PARAMS.samples_per_symbol)
        corrupted[start : start + length] += 30.0 * (
            rng.normal(size=length) + 1j * rng.normal(size=length)
        )
        decoder = ChoirDecoder(PARAMS, rng=rng)
        users = decoder.decode(corrupted, streams[0].size)
        accs = _accuracies(users, packet, streams)
        # At most ~3 of 14 symbols affected per user.
        assert min(accs) > 0.7


class TestAdcLimits:
    def test_clipping_adc_still_decodes_strong_users(self):
        rng = np.random.default_rng(2)
        adc = AdcModel(bits=8, full_scale=20.0)  # collision peaks clip
        packet, streams = _two_user_packet(rng, gains=(15.0, 12.0), adc=adc)
        decoder = ChoirDecoder(PARAMS, rng=rng)
        users = decoder.decode(packet.samples, streams[0].size)
        accs = _accuracies(users, packet, streams)
        assert max(accs) > 0.85  # at least the dominant structure survives

    def test_weak_user_below_quantization_floor_lost(self):
        # Sec. 5.2: "extremely weak transmitters are likely to be missed if
        # they are not registered by the analog components."  Note the
        # noise+strong-signal mixture acts as dither, so the weak user must
        # sit below the *combined* quantization+thermal floor to vanish --
        # a 3-bit ADC (quantization noise ~17x thermal) does it.
        rng = np.random.default_rng(3)
        adc = AdcModel(bits=3, full_scale=40.0)
        packet, streams = _two_user_packet(rng, gains=(35.0, 0.8), adc=adc)
        decoder = ChoirDecoder(PARAMS, rng=rng)
        users = decoder.decode(packet.samples, streams[0].size)
        accs = _accuracies(users, packet, streams)
        assert accs[0] > 0.6  # strong user survives (with quantization noise)
        assert accs[1] < 0.5  # weak user lost below the quantization floor

    def test_same_scenario_fine_adc_recovers_weak_user(self):
        rng = np.random.default_rng(3)
        adc = AdcModel(bits=14, full_scale=40.0)
        packet, streams = _two_user_packet(rng, gains=(35.0, 0.8), adc=adc)
        decoder = ChoirDecoder(PARAMS, rng=rng)
        users = decoder.decode(packet.samples, streams[0].size)
        accs = _accuracies(users, packet, streams)
        assert accs[1] > 0.85


class TestDegenerateInputs:
    def test_truncated_capture_decodes_available_windows(self):
        rng = np.random.default_rng(4)
        packet, streams = _two_user_packet(rng)
        cut = packet.samples[: (PARAMS.preamble_len + 6) * PARAMS.samples_per_symbol]
        decoder = ChoirDecoder(PARAMS, rng=rng)
        users = decoder.decode(cut, streams[0].size)
        # Only 6 data windows available; decoded streams are short but valid.
        assert all(u.symbols.size == 6 for u in users)

    def test_all_zero_capture(self):
        decoder = ChoirDecoder(PARAMS, rng=np.random.default_rng(5))
        users = decoder.decode(np.zeros(20 * 256, dtype=complex), 4)
        assert users == []

    def test_dc_offset_tolerated(self):
        # A receiver DC offset (LO leakage) dechirps into a chirp -- spread
        # like any narrowband interferer.
        rng = np.random.default_rng(6)
        packet, streams = _two_user_packet(rng)
        decoder = ChoirDecoder(PARAMS, rng=rng)
        users = decoder.decode(packet.samples + 5.0, streams[0].size)
        accs = _accuracies(users, packet, streams)
        assert min(accs) > 0.85
