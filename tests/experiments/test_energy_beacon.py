"""Tests for the energy and beacon-scheduling experiments."""

import pytest

from repro.experiments import run_beacon_scheduling, run_energy_comparison


class TestEnergyExperiment:
    def test_choir_outlives_aloha(self):
        result = run_energy_comparison(duration_s=15.0)
        by_system = {r["system"]: r for r in result.rows}
        assert (
            by_system["choir"]["battery_life_years"]
            > by_system["aloha"]["battery_life_years"]
        )

    def test_duty_cycle_rate_ordering(self):
        result = run_energy_comparison(duration_s=15.0)
        by_system = {r["system"]: r for r in result.rows}
        assert (
            by_system["choir"]["max_duty_cycle_rate_per_min"]
            > by_system["aloha"]["max_duty_cycle_rate_per_min"]
        )

    def test_oracle_is_the_energy_floor(self):
        result = run_energy_comparison(duration_s=15.0)
        by_system = {r["system"]: r for r in result.rows}
        assert by_system["oracle"]["tx_per_packet"] == 1.0


class TestBeaconExperiment:
    def test_group_size_grows_with_distance(self):
        result = run_beacon_scheduling()
        sizes = [
            r["mean_group_size"] for r in result.rows if r["mean_group_size"]
        ]
        assert sizes == sorted(sizes)

    def test_near_band_full_resolution(self):
        result = run_beacon_scheduling()
        nearest = result.rows[0]
        assert nearest["resolution"] == "full"
        assert nearest["fraction_served"] == 1.0

    def test_far_band_partially_served_via_teams(self):
        result = run_beacon_scheduling()
        farthest = result.rows[-1]
        assert farthest["resolution"] == "coarse (MSB)"
        assert 0.0 <= farthest["fraction_served"] < 1.0
