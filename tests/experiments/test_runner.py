"""Tests for the experiment result plumbing (tables, CSV)."""

import pytest

from repro.experiments.runner import ExperimentResult, format_table


class TestCsvExport:
    def test_to_csv_roundtrip(self):
        result = ExperimentResult("x")
        result.add(a=1, b=2.5, c="hello")
        result.add(a=3, b=4.5, c="world")
        csv_text = result.to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "a,b,c"
        assert lines[1] == "1,2.5,hello"
        assert len(lines) == 3

    def test_empty_csv(self):
        assert ExperimentResult("empty").to_csv() == ""

    def test_save_csv(self, tmp_path):
        result = ExperimentResult("x")
        result.add(value=42)
        path = tmp_path / "out.csv"
        result.save_csv(path)
        assert path.read_text().startswith("value")


class TestFormatting:
    def test_scientific_for_tiny_values(self):
        text = format_table([{"v": 1.5e-7}])
        assert "e-07" in text

    def test_plain_for_normal_values(self):
        text = format_table([{"v": 3.25}])
        assert "3.25" in text

    def test_missing_column_blank(self):
        text = format_table([{"a": 1, "b": 2}, {"a": 3}])
        assert "3" in text
