"""Tests for the model-vs-waveform calibration harness."""

import numpy as np
import pytest

from repro.experiments.calibration import run_phy_calibration
from repro.mac.phy import Transmission
from repro.mac.waveform_phy import WaveformPhy
from repro.phy import LoRaParams

PARAMS = LoRaParams(spreading_factor=8, preamble_len=8)


class TestWaveformPhy:
    def test_single_transmission_delivered(self):
        phy = WaveformPhy(PARAMS, rng=np.random.default_rng(0))
        delivered = phy.resolve([Transmission(node_id=7, snr_db=15.0)])
        assert delivered == {7}

    def test_empty(self):
        phy = WaveformPhy(PARAMS, rng=np.random.default_rng(1))
        assert phy.resolve([]) == set()

    def test_below_floor_lost(self):
        phy = WaveformPhy(PARAMS, rng=np.random.default_rng(2))
        delivered = phy.resolve([Transmission(node_id=1, snr_db=-30.0)])
        assert delivered == set()

    def test_radios_persist_across_slots(self):
        phy = WaveformPhy(PARAMS, rng=np.random.default_rng(3))
        phy.resolve([Transmission(node_id=1, snr_db=15.0)])
        radio_first = phy._radios[1]
        phy.resolve([Transmission(node_id=1, snr_db=15.0)])
        assert phy._radios[1] is radio_first  # same board, same offsets

    def test_pair_delivered(self):
        phy = WaveformPhy(PARAMS, rng=np.random.default_rng(4))
        delivered = phy.resolve(
            [
                Transmission(node_id=1, snr_db=18.0),
                Transmission(node_id=2, snr_db=14.0),
            ]
        )
        assert delivered == {1, 2}


class TestCalibration:
    def test_small_calibration_tracks(self):
        result = run_phy_calibration(user_counts=(2, 4), n_trials=2)
        for row in result.rows:
            assert row["model_delivered"] >= 0.5
            assert row["waveform_delivered"] >= 0.5
            assert abs(row["gap"]) <= 0.5
