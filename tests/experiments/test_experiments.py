"""Smoke + shape tests for the per-figure experiment harnesses."""

import numpy as np
import pytest

from repro.experiments import (
    run_collision_peaks,
    run_density_vs_snr,
    run_density_vs_users,
    run_grouping_error,
    run_isi_windows,
    run_mimo_comparison,
    run_mixed_throughput,
    run_offset_cdf,
    run_offset_stability,
    run_range_throughput,
    run_range_vs_team,
    run_residual_surface,
    run_resolution_vs_distance,
)
from repro.experiments.fig8_density import summarize_gains
from repro.experiments.fig9_range import validate_team_decode
from repro.experiments.runner import ExperimentResult, format_table, spreading_factor_for_snr


class TestRunnerUtilities:
    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_result_columns(self):
        result = ExperimentResult("x")
        result.add(a=1, b=2.0)
        result.add(a=3, b=4.0)
        assert result.column("a") == [1, 3]
        assert "==" in str(result)

    def test_rate_adaptation_monotone(self):
        sfs = [spreading_factor_for_snr(snr) for snr in (-20, -5, 3, 10, 20)]
        assert sfs == sorted(sfs, reverse=True)


class TestFig3:
    def test_padded_fft_resolves_fraction(self):
        result = run_collision_peaks(offset_separation_bins=50.4)
        coarse, fine = result.rows
        assert coarse["n_peaks"] == 2 and fine["n_peaks"] == 2
        assert fine["separation_bins"] == pytest.approx(50.4, abs=0.1)
        # The unpadded FFT quantizes the separation more coarsely.
        assert abs(coarse["separation_bins"] - 50.4) >= abs(
            fine["separation_bins"] - 50.4
        ) - 1e-9


class TestFig4:
    def test_surface_locally_convex(self):
        result = run_residual_surface()
        row = result.rows[0]
        assert row["monotone_rays"] == "4/4"
        assert row["min_location_error_bins"] < 0.1
        assert row["dynamic_range"] > 5


class TestFig5:
    def test_four_peaks_and_dedup(self):
        result = run_isi_windows(delay_fraction=0.3)
        row = result.rows[0]
        assert row["max_peaks_per_window"] <= 4
        assert row["mean_peaks_per_window"] > 2
        assert row["dedup_accuracy"] > 0.9


class TestFig7:
    def test_offsets_near_uniform(self):
        result = run_offset_cdf(n_boards=15)
        agg = result.rows[0]
        assert agg["n_boards"] >= 12
        assert agg["ks_distance"] < 0.35
        assert agg["mean_estimate_error_bins"] < 0.1

    def test_stability_improves_with_snr(self):
        result = run_offset_stability(n_pairs=3)
        stds = [row["cfo_to_stability_pct_of_bin"] for row in result.rows]
        assert stds[0] >= stds[-1]  # low SNR spread >= high SNR spread


class TestFig8:
    def test_choir_wins_every_regime(self):
        result = run_density_vs_snr(duration_s=10.0)
        for regime in ("low", "medium", "high"):
            rows = {r["system"]: r for r in result.rows if r["snr_regime"] == regime}
            assert rows["choir"]["throughput_bps"] > rows["oracle"]["throughput_bps"]
            assert rows["oracle"]["throughput_bps"] >= rows["aloha"]["throughput_bps"]

    def test_throughput_rises_with_snr(self):
        result = run_density_vs_snr(duration_s=10.0)
        choir = [r["throughput_bps"] for r in result.rows if r["system"] == "choir"]
        assert choir[0] < choir[-1]

    def test_scaling_gains_at_ten_users(self):
        result = run_density_vs_users(duration_s=20.0, user_counts=(2, 10))
        gains = summarize_gains(result, n_users=10)
        # Paper: 6.84x over Oracle, 29x over ALOHA; we accept the band.
        assert 4.0 < gains["throughput_vs_oracle"] < 12.0
        assert 10.0 < gains["throughput_vs_aloha"] < 45.0
        assert gains["latency_vs_aloha"] > 5.0

    def test_choir_below_ideal(self):
        result = run_density_vs_users(duration_s=10.0, user_counts=(10,))
        rows = {r["system"]: r for r in result.rows}
        assert rows["choir"]["throughput_bps"] < rows["ideal"]["throughput_bps"]


class TestFig9:
    def test_throughput_rises_with_team_size(self):
        result = run_range_throughput()
        throughputs = result.column("throughput_bps")
        assert throughputs[0] == 0.0  # single node is beyond range
        assert throughputs[-1] > 0.0
        assert all(b >= a for a, b in zip(throughputs, throughputs[1:]))

    def test_range_gain_matches_headline(self):
        result = run_range_vs_team()
        final = result.rows[-1]
        assert final["gain_over_single"] == pytest.approx(2.65, abs=0.1)
        assert final["max_distance_m"] == pytest.approx(2650, rel=0.05)

    def test_waveform_validates_pooling(self):
        solo = validate_team_decode(1, -9.0, n_symbols=8, seed=3)
        team = validate_team_decode(10, -9.0, n_symbols=8, seed=3)
        assert team["symbol_accuracy"] >= solo["symbol_accuracy"]
        assert team["symbol_accuracy"] > 0.9


class TestFig10:
    def test_error_grows_with_distance(self):
        result = run_resolution_vs_distance(distances_m=(500, 1500, 2500))
        errors = result.column("temperature_error")
        assert errors[0] < errors[1] < errors[2]

    def test_headline_error_at_2500m(self):
        result = run_resolution_vs_distance(distances_m=(2500,))
        assert 0.05 < result.rows[0]["temperature_error"] < 0.25


class TestFig11:
    def test_center_distance_best(self):
        result = run_grouping_error()
        errors = {r["strategy"]: r["temperature_error"] for r in result.rows}
        assert errors["center_dist"] < errors["random"]
        assert errors["center_dist"] < errors["floor"]

    def test_only_choir_reaches_far_sensors(self):
        result = run_mixed_throughput(duration_s=10.0)
        rows = {r["system"]: r for r in result.rows}
        assert rows["aloha"]["far_packets_delivered"] == 0
        assert rows["oracle"]["far_packets_delivered"] == 0
        assert rows["choir"]["far_packets_delivered"] > 0
        assert rows["choir"]["throughput_bps"] > rows["oracle"]["throughput_bps"]


class TestFig12:
    def test_system_ordering(self):
        result = run_mimo_comparison(duration_s=15.0)
        rows = {r["system"]: r["throughput_bps"] for r in result.rows}
        assert rows["aloha"] < rows["oracle"] < rows["mu_mimo"]
        assert rows["mu_mimo"] < rows["choir_1ant"] <= rows["choir_mimo"] * 1.05
        assert rows["choir_mimo"] >= rows["choir_1ant"]
