"""Tests for the extension experiments."""

import pytest

from repro.experiments.extensions import run_multisf_demux, run_unb_separation


class TestMultiSfExperiment:
    def test_branch_user_counts(self):
        result = run_multisf_demux()
        for row in result.rows:
            assert row["found_users"] == row["expected_users"]

    def test_both_cancellation_modes_reported(self):
        result = run_multisf_demux()
        modes = {row["cancellation"] for row in result.rows}
        assert modes == {"on", "off"}


class TestUnbExperiment:
    def test_all_population_sizes_separate(self):
        result = run_unb_separation()
        equal = [r for r in result.rows if "equal-power" in r["scenario"]]
        assert all(
            r["found_users"] == int(r["scenario"].split()[0]) for r in equal
        )

    def test_near_far_weak_user_decoded(self):
        result = run_unb_separation()
        near_far = next(r for r in result.rows if "near-far" in r["scenario"])
        assert near_far["mean_bit_accuracy"] == 1.0
